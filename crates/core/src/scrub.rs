//! The orphan scrubber: provider-side mark-and-sweep by page liveness.
//!
//! PR 4's writer fault tolerance deliberately leaks storage: pages
//! stored by a writer that died before its leaf nodes landed — and
//! repair pages that lose the `put_new` leaf race — sit in providers
//! forever, referenced by no tree. [`scrub_orphans`] reclaims them
//! with a **global** mark-and-sweep that must stay correct under full
//! concurrency (ingest, pipelined updates, aborts, GC, reads):
//!
//! 1. **Epoch cut** ([`Engine::scrub_pid_epoch`]): page ids are handed
//!    out monotonically, and every page-storing operation (update
//!    pipeline, abort repair) registers its birth watermark *before*
//!    allocating its first id ([`Engine::pin_update`]). The cut is the
//!    minimum of all live floors and the current watermark, so every
//!    page an in-flight or future operation will ever store lies **at
//!    or above** the cut — exempt. Pages *below* the cut belong to
//!    operations that already finished (their leaves are durable →
//!    marked) or died (their unreferenced pages are the garbage).
//!    Taking the epoch *before* the metadata cut makes the race window
//!    one-sided: an operation starting in between is exempt by id.
//! 2. **Mark** ([`VersionManager::scrub_cut`] +
//!    [`blobseer_meta::collect_tree_pages`]): walk every retained root
//!    of every blob and branch — published versions and
//!    committed-abort repair trees alike, all complete by construction
//!    — collecting live page ids; shared subtrees are walked once
//!    across all roots and branches. In-flight versions (wedged,
//!    completed-but-unpublished, mid-abort) get their **leaf positions
//!    probed directly**: a durable leaf's page is referenced forever
//!    (repair fills gaps, never overwrites), so it is marked even
//!    though no root reaches it yet. A missing node in a retained tree
//!    aborts the scrub with [`BlobError::ScrubConflict`] before
//!    anything is deleted — under-marking must never sweep.
//! 3. **Sweep** ([`blobseer_provider::DataProvider::scrub`], one job
//!    per provider on the engine's I/O pool): delete every stored page
//!    below the cut that is not marked. Replicas carry their primary's
//!    page id, so each provider judges its own copies independently —
//!    partial-replica leaks are reclaimed the same way. Offline
//!    providers are skipped (and reported): their copies stay until a
//!    scrub after recovery, exactly like GC's best-effort deletes.
//!
//! What the scrubber deliberately does **not** require: quiescence. A
//! concurrent writer's pages survive via its pin (or its post-epoch
//! ids); a concurrent reader only reaches marked pages; a concurrent
//! `retire_versions` can at worst make the mark fail typed (retry).
//! See `docs/OPERATIONS.md` for the full safety argument and when to
//! run this vs. [`crate::BlobSeer::retire_versions`] and
//! [`crate::BlobSeer::sweep_expired_leases`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blobseer_meta::{collect_tree_pages, NodeKey, TreeNode, TreeReader};
use blobseer_provider::ScrubPass;
use blobseer_rt::parallel_map_jobs;
use blobseer_types::{BlobError, NodePos, PageId, Result};

use crate::engine::Engine;

/// What a [`crate::BlobSeer::scrub_orphans`] pass found and reclaimed.
///
/// Page *copies* (replicas included) are counted on the sweep side
/// (`pages_scanned` / `pages_exempt` / `pages_reclaimed`); distinct
/// live pages are counted on the mark side (`pages_marked`). On a
/// quiescent deployment `pages_scanned == live copies + reclaimed`,
/// and a second scrub reclaims nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Distinct pages the mark phase proved live from metadata.
    pub pages_marked: usize,
    /// Page copies inspected across all swept providers.
    pub pages_scanned: u64,
    /// Copies spared by the epoch cut (stored by in-flight or
    /// post-mark operations; judged by a later scrub).
    pub pages_exempt: u64,
    /// Orphaned copies deleted.
    pub pages_reclaimed: u64,
    /// Payload bytes those deletions freed.
    pub bytes_reclaimed: u64,
    /// Condemned copies whose delete errored at the store (kept,
    /// retried next pass); `bytes_reclaimed` stays exact regardless.
    pub pages_failed: u64,
    /// Providers swept.
    pub providers_scrubbed: usize,
    /// Offline (or mid-sweep unreadable) providers whose pass did not
    /// complete; re-scrub after recovery.
    pub providers_skipped: usize,
    /// Per-blob mark restarts absorbed: a concurrent `retire_versions`
    /// moved a blob's retire generation mid-mark, so that blob's mark
    /// was re-cut and re-walked in place instead of failing the whole
    /// pass with [`BlobError::ScrubConflict`].
    pub mark_restarts: u64,
}

/// Shared, `'static` state for the per-provider sweep jobs.
struct SweepShared {
    live: HashSet<PageId>,
    epoch: PageId,
    exempt: AtomicU64,
}

pub(crate) fn scrub_orphans(engine: &Arc<Engine>) -> Result<ScrubReport> {
    // Phases are timed separately (mark = metadata-bound, sweep =
    // provider-bound): which tail grows tells an operator *where* a
    // slow scrub spends its time — see docs/OBSERVABILITY.md.
    let mark_timer = engine.metrics.timer();
    // 1. Epoch cut strictly before the metadata cut (module docs).
    let epoch = engine.scrub_pid_epoch();
    let cuts = engine.vm.scrub_cut();

    // 2. Mark. `visited` spans blobs: branches resolve shared versions
    // to their owning ancestor's keys, so shared history is walked once
    // no matter how many branches retain it.
    let mut visited: HashSet<NodeKey> = HashSet::new();
    let mut live: HashSet<PageId> = HashSet::new();
    let mut mark_restarts = 0u64;
    for mut cut in cuts {
        loop {
            // Transactional scratch: a failed walk leaves the visited
            // set poisoned — keys inserted before their subtrees were
            // enumerated — and retrying over it would skip-and-under-
            // mark. The walk therefore commits into the shared set only
            // when the whole blob marked cleanly. (Spurious `live`
            // entries from a failed attempt merely spare pages for a
            // later pass — over-marking is always safe.)
            let mut scratch = visited.clone();
            let mut on_leaf = |pid: PageId, _| {
                live.insert(pid);
            };
            match mark_one_blob(engine, &cut, &mut scratch, &mut on_leaf) {
                Ok(()) => {
                    visited = scratch;
                    break;
                }
                Err(conflict) => {
                    // A concurrent `retire_versions` on *this* blob is
                    // the benign cause, and it moves the blob's retire
                    // generation with every real boundary advance. If
                    // the generation moved, re-cut just this blob and
                    // restart its mark — every other blob's work
                    // stands. A conflict with an unmoved generation is
                    // genuinely incomplete metadata: fail the pass.
                    let gen = engine.vm.retire_generation(cut.blob).unwrap_or(cut.retire_gen);
                    if gen == cut.retire_gen {
                        return Err(conflict);
                    }
                    // Each retry consumes one observed generation
                    // advance, so this loop cannot spin without a
                    // matching stream of real retires.
                    mark_restarts += 1;
                    cut = engine.vm.scrub_cut_for(cut.blob)?;
                }
            }
        }
    }
    let pages_marked = live.len();
    crate::metrics::EngineMetrics::record(mark_timer, &engine.metrics.scrub_mark_latency);
    let sweep_timer = engine.metrics.timer();

    // 3. Sweep, one job per provider on the I/O pool.
    let providers = engine.providers.all_providers();
    let n = providers.len();
    let shared = Arc::new(SweepShared { live, epoch, exempt: AtomicU64::new(0) });
    let jobs_shared = Arc::clone(&shared);
    let outcomes: Vec<Option<ScrubPass>> =
        parallel_map_jobs(&engine.pool, n, engine.max_parallel_jobs(), move |i| {
            let provider = &providers[i];
            let s = Arc::clone(&jobs_shared);
            let condemned = move |pid: PageId| {
                if s.live.contains(&pid) {
                    return false; // marked live — not the cut's doing
                }
                if pid >= s.epoch {
                    s.exempt.fetch_add(1, Ordering::Relaxed);
                    return false; // unjudgeable yet: in-flight or post-mark
                }
                true
            };
            // An offline (or mid-sweep-failing) provider keeps its
            // copies; it is re-swept after recovery, like GC.
            provider.scrub(&condemned).ok()
        });

    let mut report = ScrubReport {
        pages_marked,
        mark_restarts,
        pages_exempt: shared.exempt.load(Ordering::Relaxed),
        ..ScrubReport::default()
    };
    for outcome in outcomes {
        match outcome {
            Some(pass) => {
                report.providers_scrubbed += 1;
                report.pages_scanned += pass.pages_scanned;
                report.pages_reclaimed += pass.pages_reclaimed;
                report.bytes_reclaimed += pass.bytes_reclaimed;
                report.pages_failed += pass.pages_failed;
            }
            None => report.providers_skipped += 1,
        }
    }
    crate::metrics::EngineMetrics::record(sweep_timer, &engine.metrics.scrub_sweep_latency);
    Ok(report)
}

/// One blob's share of the mark phase: walk every retained root, then
/// probe the in-flight leaf positions, reporting every live leaf to
/// `on_leaf`. Fails typed ([`BlobError::ScrubConflict`]) without
/// sweeping anything when a retained tree is incomplete — the caller
/// decides whether that is a benign retire race (restart this blob) or
/// a real fault. Shared with the replica repairer (`crate::repair`),
/// which wants the leaf's primary provider as well as its page.
pub(crate) fn mark_one_blob(
    engine: &Arc<Engine>,
    cut: &blobseer_version::BlobScrubCut,
    visited: &mut HashSet<NodeKey>,
    on_leaf: &mut dyn FnMut(PageId, blobseer_types::ProviderId),
) -> Result<()> {
    let reader = TreeReader::new(&engine.meta, &cut.lineage);
    for &root in &cut.roots {
        collect_tree_pages(&reader, root, visited, on_leaf).map_err(|e| {
            BlobError::ScrubConflict(format!(
                "mark of {} {} hit incomplete metadata ({e}); \
                 likely racing retire_versions — nothing was swept",
                cut.blob, root.version
            ))
        })?;
    }
    // In-flight versions: probe the leaf positions the update was
    // assigned (non-blocking; key resolution through the reader, like
    // every other walk). Anything durable is marked; anything absent is
    // the writer's still-unstored (pinned/exempt) or leaked state.
    for &(version, range) in &cut.inflight {
        for page in range.iter() {
            if let Ok(TreeNode::Leaf { pid, provider, .. }) =
                reader.fetch(version, NodePos::new(page, 1), false)
            {
                on_leaf(pid, provider);
            }
        }
    }
    Ok(())
}
