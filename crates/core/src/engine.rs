//! Deployment wiring: every paper role assembled in one process.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use blobseer_meta::MetaStore;
use blobseer_provider::ProviderManager;
use blobseer_rt::ThreadPool;
use blobseer_types::{BlobId, PageId, PageIdGen, StoreConfig};
use blobseer_version::VersionManager;
use parking_lot::Mutex;

/// The in-process cluster: version manager, provider manager + data
/// providers, metadata providers (DHT) and the client I/O pool.
///
/// The paper deploys these as separate processes on separate nodes; the
/// algorithms only require that they be independent components with
/// their own state and synchronization, which is what this struct holds.
pub(crate) struct Engine {
    pub config: StoreConfig,
    pub vm: VersionManager,
    pub meta: MetaStore,
    /// Per-engine metric registry (counters + latency histograms); see
    /// `crate::metrics` and `docs/OBSERVABILITY.md`.
    pub metrics: crate::metrics::EngineMetrics,
    pub providers: ProviderManager,
    pub pool: ThreadPool,
    /// Completion stages of pipelined updates run here, *not* on
    /// [`Engine::pool`]: a stage fans sub-work out to `pool` and waits,
    /// which must never nest on the pool it runs on. Detached, because a
    /// stage holds an `Arc<Engine>` and may be the one dropping the
    /// engine — from one of this pool's own workers.
    pub pipeline: ThreadPool,
    /// Per-blob submission locks for pipelined updates: held across
    /// version assignment *and* the enqueue of the completion stage, so
    /// the FIFO pipeline queue receives a blob's stages in version
    /// order. Without this, a submitter preempted between `assign` and
    /// `execute` could let higher versions enqueue first and occupy
    /// every pipeline worker with stages that block (bounded by the
    /// metadata timeout) on the not-yet-queued lower version. One
    /// `Arc<Mutex>` per blob that ever pipelined; never reclaimed
    /// (bytes per blob, same order as the VM's own per-blob state).
    pub order_locks: Mutex<HashMap<BlobId, Arc<Mutex<()>>>>,
    /// Serializes lease sweeps (see `crate::abort::sweep_expired`):
    /// concurrent sweeps would race each other's repairs for the same
    /// versions; a second sweeper waits its turn and then re-scans.
    pub sweep_gate: Mutex<()>,
    /// `true` while a background sweep job sits in the pipeline queue —
    /// keeps `maybe_sweep` from stacking redundant jobs.
    pub sweep_queued: AtomicBool,
    /// Birth watermarks of operations currently storing pages (updates
    /// and abort repairs), keyed by pin id — the engine-side half of
    /// the orphan scrubber's **epoch cut** (see
    /// [`Engine::scrub_pid_epoch`]).
    pub update_pins: Mutex<UpdatePins>,
    pub pidgen: PageIdGen,
    /// Multi-tenant QoS state (admission buckets + the deficit-weighted
    /// pipeline queue); `None` unless configured via
    /// `Builder::qos(...)`. See `crate::qos`.
    pub qos: Option<crate::qos::EngineQos>,
}

/// Registry behind [`Engine::pin_update`]: each live pin records the
/// page-id watermark at the instant its operation began.
#[derive(Default)]
pub struct UpdatePins {
    next: u64,
    floors: BTreeMap<u64, PageId>,
}

/// RAII registration of a page-storing operation (an update pipeline or
/// an abort repair) with the scrubber's epoch-cut registry. Held from
/// *before* the operation allocates its first page id until its pages
/// are either referenced by durable leaves or the operation is dead —
/// dropping the pin is, to the scrubber, the writer's death
/// certificate.
pub struct UpdatePin {
    engine: Arc<Engine>,
    id: u64,
}

impl Drop for UpdatePin {
    fn drop(&mut self) {
        self.engine.update_pins.lock().floors.remove(&self.id);
    }
}

impl Engine {
    /// Register a page-storing operation with the epoch-cut registry.
    /// Must be called **before** the operation's first
    /// `pidgen.next_id()`: the pin's floor then lower-bounds every page
    /// id the operation will ever store, which is what lets
    /// [`Engine::scrub_pid_epoch`] exempt the operation's pages without
    /// knowing their ids. The watermark read and the registration
    /// happen under one lock so they cannot interleave with an epoch
    /// read.
    pub fn pin_update(self: &Arc<Self>) -> UpdatePin {
        let mut pins = self.update_pins.lock();
        let floor = self.pidgen.peek();
        let id = pins.next;
        pins.next += 1;
        pins.floors.insert(id, floor);
        UpdatePin { engine: Arc::clone(self), id }
    }

    /// The orphan scrubber's **epoch cut**: every page id `>= ` the
    /// returned watermark is exempt from the sweep. Taken under the pin
    /// lock as `min(every live pin's floor, the current watermark)`, so
    /// it lower-bounds the page ids of (a) any operation registered
    /// after this read (its floor is read later, hence higher) and (b)
    /// any operation still alive from before it (its floor is in the
    /// registry). Pages *below* the cut therefore belong to operations
    /// that finished or died — exactly the set metadata can judge.
    pub fn scrub_pid_epoch(&self) -> PageId {
        let pins = self.update_pins.lock();
        let now = self.pidgen.peek();
        pins.floors.values().copied().min().map_or(now, |floor| floor.min(now))
    }
}

impl Engine {
    /// The pipelined-submission lock for `blob`.
    pub fn order_lock(&self, blob: BlobId) -> Arc<Mutex<()>> {
        Arc::clone(self.order_locks.lock().entry(blob).or_default())
    }
}

impl Engine {
    /// The bound on blocking waits (SYNC, in-flight metadata nodes).
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.config.metadata_wait_ms)
    }

    /// Page size shorthand.
    pub fn psize(&self) -> u64 {
        self.config.page_size
    }

    /// Upper bound on boxed jobs per parallel fan-out, from the
    /// configured chunking factor (0 = per-item dispatch baseline).
    pub fn max_parallel_jobs(&self) -> usize {
        match self.config.io_chunks_per_thread {
            0 => usize::MAX,
            k => self.pool.threads().saturating_mul(k),
        }
    }
}
