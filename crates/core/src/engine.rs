//! Deployment wiring: every paper role assembled in one process.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use blobseer_meta::MetaStore;
use blobseer_provider::ProviderManager;
use blobseer_rt::ThreadPool;
use blobseer_types::{BlobId, PageIdGen, StoreConfig};
use blobseer_version::VersionManager;
use parking_lot::Mutex;

/// The in-process cluster: version manager, provider manager + data
/// providers, metadata providers (DHT) and the client I/O pool.
///
/// The paper deploys these as separate processes on separate nodes; the
/// algorithms only require that they be independent components with
/// their own state and synchronization, which is what this struct holds.
pub(crate) struct Engine {
    pub config: StoreConfig,
    pub vm: VersionManager,
    pub meta: MetaStore,
    pub providers: ProviderManager,
    pub pool: ThreadPool,
    /// Completion stages of pipelined updates run here, *not* on
    /// [`Engine::pool`]: a stage fans sub-work out to `pool` and waits,
    /// which must never nest on the pool it runs on. Detached, because a
    /// stage holds an `Arc<Engine>` and may be the one dropping the
    /// engine — from one of this pool's own workers.
    pub pipeline: ThreadPool,
    /// Per-blob submission locks for pipelined updates: held across
    /// version assignment *and* the enqueue of the completion stage, so
    /// the FIFO pipeline queue receives a blob's stages in version
    /// order. Without this, a submitter preempted between `assign` and
    /// `execute` could let higher versions enqueue first and occupy
    /// every pipeline worker with stages that block (bounded by the
    /// metadata timeout) on the not-yet-queued lower version. One
    /// `Arc<Mutex>` per blob that ever pipelined; never reclaimed
    /// (bytes per blob, same order as the VM's own per-blob state).
    pub order_locks: Mutex<HashMap<BlobId, Arc<Mutex<()>>>>,
    /// Serializes lease sweeps (see `crate::abort::sweep_expired`):
    /// concurrent sweeps would race each other's repairs for the same
    /// versions; a second sweeper waits its turn and then re-scans.
    pub sweep_gate: Mutex<()>,
    /// `true` while a background sweep job sits in the pipeline queue —
    /// keeps `maybe_sweep` from stacking redundant jobs.
    pub sweep_queued: AtomicBool,
    pub pidgen: PageIdGen,
}

impl Engine {
    /// The pipelined-submission lock for `blob`.
    pub fn order_lock(&self, blob: BlobId) -> Arc<Mutex<()>> {
        Arc::clone(self.order_locks.lock().entry(blob).or_default())
    }
}

impl Engine {
    /// The bound on blocking waits (SYNC, in-flight metadata nodes).
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.config.metadata_wait_ms)
    }

    /// Page size shorthand.
    pub fn psize(&self) -> u64 {
        self.config.page_size
    }

    /// Upper bound on boxed jobs per parallel fan-out, from the
    /// configured chunking factor (0 = per-item dispatch baseline).
    pub fn max_parallel_jobs(&self) -> usize {
        match self.config.io_chunks_per_thread {
            0 => usize::MAX,
            k => self.pool.threads().saturating_mul(k),
        }
    }
}
