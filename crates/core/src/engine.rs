//! Deployment wiring: every paper role assembled in one process.

use std::time::Duration;

use blobseer_meta::MetaStore;
use blobseer_provider::ProviderManager;
use blobseer_rt::ThreadPool;
use blobseer_types::{PageIdGen, StoreConfig};
use blobseer_version::VersionManager;

/// The in-process cluster: version manager, provider manager + data
/// providers, metadata providers (DHT) and the client I/O pool.
///
/// The paper deploys these as separate processes on separate nodes; the
/// algorithms only require that they be independent components with
/// their own state and synchronization, which is what this struct holds.
pub(crate) struct Engine {
    pub config: StoreConfig,
    pub vm: VersionManager,
    pub meta: MetaStore,
    pub providers: ProviderManager,
    pub pool: ThreadPool,
    pub pidgen: PageIdGen,
}

impl Engine {
    /// The bound on blocking waits (SYNC, in-flight metadata nodes).
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.config.metadata_wait_ms)
    }

    /// Page size shorthand.
    pub fn psize(&self) -> u64 {
        self.config.page_size
    }

    /// Upper bound on boxed jobs per parallel fan-out, from the
    /// configured chunking factor (0 = per-item dispatch baseline).
    pub fn max_parallel_jobs(&self) -> usize {
        match self.config.io_chunks_per_thread {
            0 => usize::MAX,
            k => self.pool.threads().saturating_mul(k),
        }
    }
}
