//! Deployment-wide statistics.

use blobseer_dht::DhtStats;
use blobseer_provider::ProviderStats;
use blobseer_version::VmStats;

use crate::engine::Engine;

/// A point-in-time view of the whole deployment, backing the paper's
/// §4.3 efficiency claims:
///
/// * *storage efficiency* (E3): [`StoreStats::physical_bytes`] vs. the
///   logical bytes addressable across all published snapshots;
/// * *metadata sharing* (E4): [`StoreStats::metadata_nodes`] vs. the
///   node count a full per-version rebuild would need;
/// * *hotspots*: per-provider and per-bucket counters.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// Per-data-provider counters.
    pub providers: Vec<ProviderStats>,
    /// Metadata DHT counters (per bucket + totals).
    pub metadata: DhtStats,
    /// Version-manager counters.
    pub vm: VmStats,
    /// Total payload bytes physically stored across all providers.
    pub physical_bytes: u64,
    /// Total pages physically stored.
    pub physical_pages: usize,
    /// Total metadata tree nodes stored.
    pub metadata_nodes: usize,
    /// Lifetime boxed jobs submitted to the client I/O pool — the
    /// dispatch-overhead gauge behind the chunked fork-join (a large
    /// batch should cost ~one job per worker, not one per page).
    pub io_jobs_dispatched: u64,
}

pub(crate) fn collect(engine: &Engine) -> StoreStats {
    StoreStats {
        providers: engine.providers.stats(),
        metadata: engine.meta.stats(),
        vm: engine.vm.stats(),
        physical_bytes: engine.providers.total_stored_bytes(),
        physical_pages: engine.providers.total_pages(),
        metadata_nodes: engine.meta.node_count(),
        io_jobs_dispatched: engine.pool.jobs_dispatched(),
    }
}
