//! Deployment-wide statistics.
//!
//! Two views live here: [`StoreStats`] — footprint and component
//! counters (bytes, pages, tree nodes) — and [`StatsSnapshot`] — the
//! tail-latency view built from the engine's metric registry
//! (`crate::metrics`). The first answers "how much", the second
//! "how slow"; `docs/OBSERVABILITY.md` is the reference for both.

use blobseer_dht::DhtStats;
use blobseer_metrics::HistogramSnapshot;
use blobseer_provider::ProviderStats;
use blobseer_version::VmStats;

use crate::engine::Engine;

/// A point-in-time view of the whole deployment, backing the paper's
/// §4.3 efficiency claims:
///
/// * *storage efficiency* (E3): [`StoreStats::physical_bytes`] vs. the
///   logical bytes addressable across all published snapshots;
/// * *metadata sharing* (E4): [`StoreStats::metadata_nodes`] vs. the
///   node count a full per-version rebuild would need;
/// * *hotspots*: per-provider and per-bucket counters.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// Per-data-provider counters.
    pub providers: Vec<ProviderStats>,
    /// Metadata DHT counters (per bucket + totals).
    pub metadata: DhtStats,
    /// Version-manager counters.
    pub vm: VmStats,
    /// Total payload bytes physically stored across all providers.
    pub physical_bytes: u64,
    /// Total pages physically stored.
    pub physical_pages: usize,
    /// Total metadata tree nodes stored.
    pub metadata_nodes: usize,
    /// Lifetime boxed jobs submitted to the client I/O pool — the
    /// dispatch-overhead gauge behind the chunked fork-join (a large
    /// batch should cost ~one job per worker, not one per page).
    pub io_jobs_dispatched: u64,
}

pub(crate) fn collect(engine: &Engine) -> StoreStats {
    StoreStats {
        providers: engine.providers.stats(),
        metadata: engine.meta.stats(),
        vm: engine.vm.stats(),
        physical_bytes: engine.providers.total_stored_bytes(),
        physical_pages: engine.providers.total_pages(),
        metadata_nodes: engine.meta.node_count(),
        io_jobs_dispatched: engine.pool.jobs_dispatched(),
    }
}

/// Latency digest of one instrumented operation: sample count, mean
/// and nearest-rank percentiles, in nanoseconds. Percentiles are upper
/// bucket edges of a base-2 log-linear histogram — within 1/128
/// (≈ 0.8 %) above the true sample (see `blobseer_metrics`). All
/// fields are zero when the operation never ran or latency recording
/// is off ([`crate::Builder::latency_metrics`]).
///
/// # Examples
///
/// ```
/// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
/// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
/// # let blob = store.create();
/// blob.append(&[1u8; 4096])?;
/// let lat = store.stats_snapshot().append;
/// assert_eq!(lat.count, 1);
/// assert!(lat.p50_ns > 0 && lat.p50_ns <= lat.p999_ns);
/// assert!(lat.max_ns >= lat.p999_ns);
/// # Ok::<(), blobseer::BlobError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpLatency {
    /// Samples recorded since the store was built.
    pub count: u64,
    /// Mean latency in nanoseconds (0 when `count == 0`).
    pub mean_ns: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile — the tail the paper's "heavy access
    /// concurrency" claims live or die on.
    pub p999_ns: u64,
    /// Largest recorded sample's bucket edge, nanoseconds.
    pub max_ns: u64,
}

impl OpLatency {
    pub(crate) fn from_snapshot(s: &HistogramSnapshot) -> OpLatency {
        OpLatency {
            count: s.count(),
            mean_ns: s.mean(),
            p50_ns: s.p50(),
            p90_ns: s.p90(),
            p99_ns: s.p99(),
            p999_ns: s.p999(),
            max_ns: s.max(),
        }
    }
}

/// Latency-and-rate digest of one operation over the histogram's
/// **recent window** (the ring of interval slices behind
/// [`blobseer_metrics::WindowedHistogram`]), as opposed to the
/// lifetime [`OpLatency`] view. This is what a dashboard's "now" panel
/// wants: a burst ten minutes ago no longer dominates the percentile.
///
/// # Examples
///
/// ```
/// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
/// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
/// # let blob = store.create();
/// blob.append(&[1u8; 4096])?;
/// let w = store.stats_snapshot().append_window;
/// assert_eq!(w.count, 1);
/// assert!(w.window_ns > 0);
/// assert!(w.ops_per_sec() <= 1_000_000_000, "1 op over a >=1ns window");
/// # Ok::<(), blobseer::BlobError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpWindow {
    /// Samples recorded within the window.
    pub count: u64,
    /// Mean latency over the window, nanoseconds.
    pub mean_ns: u64,
    /// 99th percentile over the window, nanoseconds.
    pub p99_ns: u64,
    /// The window's span in nanoseconds (the denominator of
    /// [`OpWindow::ops_per_sec`]).
    pub window_ns: u64,
}

impl OpWindow {
    /// The operation's recent rate: `count` over the window span,
    /// rounded down to whole operations per second (0 when the window
    /// span is zero).
    pub fn ops_per_sec(&self) -> u64 {
        if self.window_ns == 0 {
            return 0;
        }
        ((self.count as u128 * 1_000_000_000) / self.window_ns as u128) as u64
    }

    fn from_hist(h: &blobseer_metrics::WindowedHistogram, now_ns: u64) -> OpWindow {
        let s = h.window_snapshot_at(now_ns);
        OpWindow {
            count: s.count(),
            mean_ns: s.mean(),
            p99_ns: s.p99(),
            window_ns: h.window().as_nanos() as u64,
        }
    }
}

/// Point-in-time latency digests for every instrumented operation,
/// from [`crate::BlobSeer::stats_snapshot`]. Lifetime view: every
/// sample since the store was built (the Prometheus exposition,
/// [`crate::BlobSeer::metrics_text`], carries the same data plus
/// operation counters); the `*_window` fields add the recent-window
/// rate/latency view ([`OpWindow`]) for the hot-path operations.
/// Field-by-field semantics — and how to read a rising tail — are in
/// `docs/OBSERVABILITY.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `APPEND`: version assignment to publication (blocking) or
    /// submission to completion (pipelined).
    pub append: OpLatency,
    /// `WRITE`: same spans as `append`.
    pub write: OpLatency,
    /// Contiguous snapshot reads (`Snapshot::read` / `read_into` and
    /// the flat facade).
    pub read: OpLatency,
    /// Zero-copy scatter reads ([`crate::Snapshot::read_scatter`]).
    pub read_scatter: OpLatency,
    /// Vectored reads ([`crate::Snapshot::readv`]).
    pub readv: OpLatency,
    /// Update prepare half: interior page store + version assignment.
    pub write_prepare: OpLatency,
    /// Time blocked in the metadata DHT waiting for in-flight nodes —
    /// the paper's concurrency seam. Recorded even when
    /// [`crate::Builder::latency_metrics`] is off.
    pub dht_get_wait: OpLatency,
    /// Expired-lease sweep (scan + repairs, gate wait excluded).
    pub lease_sweep: OpLatency,
    /// Orphan-scrub mark phase (metadata-bound).
    pub scrub_mark: OpLatency,
    /// Orphan-scrub sweep phase (provider-bound).
    pub scrub_sweep: OpLatency,
    /// Replica-repair mark phase (epoch cut + live-page walk +
    /// provider scans; metadata- and scan-bound).
    pub repair_mark: OpLatency,
    /// Replica-repair copy phase (chain verification + re-copies;
    /// provider-bound).
    pub repair_copy: OpLatency,
    /// Lifetime page stores re-placed onto a fallback provider because
    /// a replica-chain member was offline or erroring. Counters always
    /// count, independent of `latency_metrics`.
    pub failovers_total: u64,
    /// Lifetime page copies that failed checksum verification
    /// (engine-observed; per-provider splits are in
    /// [`StoreStats::providers`]).
    pub corrupt_pages_detected: u64,
    /// Lifetime page stores that published fewer copies than the
    /// replication factor — run [`crate::BlobSeer::repair_replicas`]
    /// when this moves; see `docs/OPERATIONS.md` ("degraded mode").
    pub under_replicated_stores: u64,
    /// `APPEND` over the recent window (rate + latency).
    pub append_window: OpWindow,
    /// `WRITE` over the recent window.
    pub write_window: OpWindow,
    /// Contiguous reads over the recent window.
    pub read_window: OpWindow,
    /// Scatter reads over the recent window.
    pub read_scatter_window: OpWindow,
    /// Vectored reads over the recent window.
    pub readv_window: OpWindow,
    /// DHT block time over the recent window — the first place a
    /// concurrency regression shows up.
    pub dht_get_wait_window: OpWindow,
}

pub(crate) fn snapshot(engine: &Engine) -> StatsSnapshot {
    let m = &engine.metrics;
    let op = |h: &blobseer_metrics::WindowedHistogram| OpLatency::from_snapshot(&h.snapshot());
    // One real clock read for every window: the coarse cached reading
    // may be stale on a quiet deployment, which would inflate windows.
    let now = blobseer_metrics::clock::refresh();
    let win = |h: &blobseer_metrics::WindowedHistogram| OpWindow::from_hist(h, now);
    StatsSnapshot {
        append: op(&m.append_latency),
        write: op(&m.write_latency),
        read: op(&m.read_latency),
        read_scatter: op(&m.read_scatter_latency),
        readv: op(&m.readv_latency),
        write_prepare: op(&m.write_prepare_latency),
        dht_get_wait: op(&m.dht_get_wait_latency),
        lease_sweep: op(&m.lease_sweep_latency),
        scrub_mark: op(&m.scrub_mark_latency),
        scrub_sweep: op(&m.scrub_sweep_latency),
        repair_mark: op(&m.repair_mark_latency),
        repair_copy: op(&m.repair_copy_latency),
        failovers_total: m.failovers.value(),
        corrupt_pages_detected: m.corrupt_pages.value(),
        under_replicated_stores: m.under_replicated_stores.value(),
        append_window: win(&m.append_latency),
        write_window: win(&m.write_latency),
        read_window: win(&m.read_latency),
        read_scatter_window: win(&m.read_scatter_latency),
        readv_window: win(&m.readv_latency),
        dht_get_wait_window: win(&m.dht_get_wait_latency),
    }
}
