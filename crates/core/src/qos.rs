//! Engine-side multi-tenant QoS (PR 8): admission control on the
//! update paths and the deficit-weighted pipeline drain.
//!
//! QoS is **opt-in** via [`crate::Builder::qos`]. When it is off,
//! `Engine::qos` is `None` and every hook in this module is a no-op —
//! the hot paths pay one `Option` check. When it is on:
//!
//! * **blocking updates** (`Blob::write` / `Blob::append`) call
//!   [`admit_blocking`] before doing any work: tokens are acquired
//!   from the tenant's byte and op buckets, waiting (bounded by
//!   `QosConfig::max_wait_ms`) when the tenant is over its rate, and
//!   failing typed ([`BlobError::QuotaExceeded`]) at the deadline;
//! * **pipelined submissions** (`write_pipelined` / `append_pipelined`)
//!   call [`admit_nonblocking`] — a refused submission fails
//!   immediately, with nothing stored and no version assigned;
//! * **completion stages** are queued through [`dispatch`]: instead of
//!   the pipeline pool's FIFO, each stage enters its tenant's lane in a
//!   [`FairQueue`] (cost = payload bytes, quantum = page size) and a
//!   drain *ticket* goes to the pool — each ticket serves the next
//!   deficit-weighted round-robin pick, which need not be the item its
//!   own push queued. Under contention a weight-3 tenant's stages
//!   drain ~3x the bytes of a weight-1 tenant's, and a quiet tenant is
//!   served within one round instead of behind a noisy backlog.
//!
//! Admission runs *before* the per-blob order lock and before
//! `prepare`, so a refused update has zero side effects: no version
//! assigned, no page stored, no pin taken. Counters conserve —
//! every settled submission increments exactly one of
//! `blobseer_qos_admitted_total` / `blobseer_qos_throttled_total`.
//!
//! **Ordering caveat.** Within one tenant, lanes are FIFO, so a
//! single-tenant blob keeps its pipelined stages in version order —
//! the invariant `Engine::order_locks` exists to protect. Pipelining
//! to the *same blob from different tenants* can let the DRR serve a
//! higher version's stage first; that stage then blocks (bounded by
//! the metadata wait + self-help sweep) until the lower version's
//! stage runs. Safe, but it wastes a pipeline worker — tag each blob's
//! pipelined traffic with a single tenant (see `docs/OPERATIONS.md`,
//! "tenant quotas").
//!
//! Time: admission reads the shared coarse clock via
//! [`clock::refresh`] (a real clock read — a throttled loop must see
//! time advance even when nothing else is recording timers); the
//! buckets themselves are the injected-time primitives from
//! `blobseer_qos`, so the sim and tests drive identical logic in
//! virtual time.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use blobseer_metrics::{clock, Counter, WindowedHistogram};
use blobseer_qos::{FairQueue, QuotaSpec, TenantRegistry};
use blobseer_types::{BlobError, QosConfig, Result, TenantId, TenantQuota};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::stats::OpLatency;

/// Cap on a single admission-loop sleep: a blocked writer re-checks at
/// least this often, so runtime quota raises ([`EngineQos::set_quota`])
/// take effect promptly even against a long wait hint.
const MAX_SLEEP: Duration = Duration::from_millis(10);

/// A queued pipelined completion stage.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Admission / throttle counters and wait histogram of one tenant.
/// Created lazily on the tenant's first submission.
pub(crate) struct TenantQosMetrics {
    pub admitted: Counter,
    pub throttled: Counter,
    pub wait: WindowedHistogram,
}

/// Typed per-tenant QoS statistics, from
/// [`crate::BlobSeer::tenant_qos_stats`]. Conservation invariant:
/// every settled update submission is counted in exactly one of
/// `admitted` / `throttled`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantQosStats {
    /// Updates that acquired their tokens (including after a bounded
    /// wait on the blocking paths).
    pub admitted: u64,
    /// Updates refused with [`BlobError::QuotaExceeded`].
    pub throttled: u64,
    /// Time blocked in admission waiting for tokens (blocking paths
    /// only; a non-blocking submission never waits). Lifetime digest.
    pub wait: OpLatency,
}

/// The engine's QoS state: the tenant registry (buckets + weights),
/// the DRR queue for pipelined completion stages, and lazily-created
/// per-tenant metrics.
pub(crate) struct EngineQos {
    registry: TenantRegistry,
    queue: FairQueue<Job>,
    max_wait: Duration,
    tenants: Mutex<HashMap<u32, Arc<TenantQosMetrics>>>,
}

impl EngineQos {
    /// Build from a validated [`QosConfig`]; `quantum` is the DRR
    /// per-visit byte quantum (the engine passes the page size).
    pub fn new(config: &QosConfig, quantum: u64) -> EngineQos {
        let registry = TenantRegistry::new(spec_of(&config.default_quota));
        for e in &config.tenants {
            registry.set_quota(e.tenant as u64, spec_of(&e.quota));
        }
        EngineQos {
            registry,
            queue: FairQueue::new(quantum.max(1)),
            max_wait: Duration::from_millis(config.max_wait_ms),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Replace `tenant`'s quota with fresh, full buckets (runtime
    /// adjustment; in-flight admissions finish against the old state).
    pub fn set_quota(&self, tenant: TenantId, quota: &TenantQuota) {
        self.registry.set_quota(tenant.raw() as u64, spec_of(quota));
    }

    /// The quota `tenant` currently runs under.
    pub fn quota(&self, tenant: TenantId) -> TenantQuota {
        quota_of(self.registry.quota(tenant.raw() as u64))
    }

    /// The typed stats view for `tenant` (zeroes before its first
    /// submission).
    pub fn stats_of(&self, tenant: TenantId) -> TenantQosStats {
        match self.tenants.lock().get(&tenant.raw()) {
            Some(m) => TenantQosStats {
                admitted: m.admitted.value(),
                throttled: m.throttled.value(),
                wait: OpLatency::from_snapshot(&m.wait.snapshot()),
            },
            None => TenantQosStats::default(),
        }
    }

    fn metrics_of(&self, tenant: TenantId) -> Arc<TenantQosMetrics> {
        Arc::clone(self.tenants.lock().entry(tenant.raw()).or_insert_with(|| {
            Arc::new(TenantQosMetrics {
                admitted: Counter::new(),
                throttled: Counter::new(),
                wait: WindowedHistogram::new(),
            })
        }))
    }

    /// Append the QoS exposition: per-tenant admission counters, wait
    /// summaries and live token gauges, with one `# HELP`/`# TYPE`
    /// header per metric name and `{tenant="N"}`-labeled series in
    /// tenant-id order.
    pub fn render_into(&self, out: &mut String) {
        let mut rows: Vec<(u32, Arc<TenantQosMetrics>)> =
            self.tenants.lock().iter().map(|(&t, m)| (t, Arc::clone(m))).collect();
        rows.sort_by_key(|(t, _)| *t);

        let _ = writeln!(
            out,
            "# HELP blobseer_qos_admitted_total updates admitted by QoS admission control\n\
             # TYPE blobseer_qos_admitted_total counter"
        );
        for (t, m) in &rows {
            let _ = writeln!(
                out,
                "blobseer_qos_admitted_total{{tenant=\"{t}\"}} {}",
                m.admitted.value()
            );
        }
        let _ = writeln!(
            out,
            "# HELP blobseer_qos_throttled_total updates refused with QuotaExceeded\n\
             # TYPE blobseer_qos_throttled_total counter"
        );
        for (t, m) in &rows {
            let _ = writeln!(
                out,
                "blobseer_qos_throttled_total{{tenant=\"{t}\"}} {}",
                m.throttled.value()
            );
        }
        let _ = writeln!(
            out,
            "# HELP blobseer_qos_wait_seconds time blocked in admission waiting for tokens\n\
             # TYPE blobseer_qos_wait_seconds summary"
        );
        for (t, m) in &rows {
            blobseer_metrics::write_summary_seconds_labeled(
                out,
                "blobseer_qos_wait_seconds",
                &format!("tenant=\"{t}\""),
                &m.wait.snapshot(),
            );
        }

        // Token gauges: only limited axes have buckets (and values).
        let now = clock::refresh();
        let states = self.registry.all();
        let _ = writeln!(
            out,
            "# HELP blobseer_qos_tokens_bytes byte tokens currently available (limited tenants)\n\
             # TYPE blobseer_qos_tokens_bytes gauge"
        );
        for (t, state) in &states {
            if let (Some(bytes), _) = state.tokens_at(now) {
                let _ = writeln!(out, "blobseer_qos_tokens_bytes{{tenant=\"{t}\"}} {bytes}");
            }
        }
        let _ = writeln!(
            out,
            "# HELP blobseer_qos_tokens_ops op tokens currently available (limited tenants)\n\
             # TYPE blobseer_qos_tokens_ops gauge"
        );
        for (t, state) in &states {
            if let (_, Some(ops)) = state.tokens_at(now) {
                let _ = writeln!(out, "blobseer_qos_tokens_ops{{tenant=\"{t}\"}} {ops}");
            }
        }
    }
}

impl std::fmt::Debug for EngineQos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineQos")
            .field("max_wait", &self.max_wait)
            .field("queued", &self.queue.len())
            .finish()
    }
}

/// `TenantQuota` → the qos crate's raw-integer spec.
fn spec_of(q: &TenantQuota) -> QuotaSpec {
    QuotaSpec {
        bytes_per_sec: q.bytes_per_sec,
        ops_per_sec: q.ops_per_sec,
        burst_bytes: q.burst_bytes,
        burst_ops: q.burst_ops,
        weight: q.weight.max(1),
    }
}

/// The reverse mapping, for [`crate::BlobSeer::tenant_quota`].
fn quota_of(s: QuotaSpec) -> TenantQuota {
    TenantQuota {
        bytes_per_sec: s.bytes_per_sec,
        ops_per_sec: s.ops_per_sec,
        burst_bytes: s.burst_bytes,
        burst_ops: s.burst_ops,
        weight: s.weight,
    }
}

/// Blocking admission (`Blob::write` / `Blob::append`): acquire one op
/// token plus `payload_bytes` byte tokens, sleeping out the bucket's
/// wait hint (in [`MAX_SLEEP`] slices) up to `QosConfig::max_wait_ms`,
/// then fail typed. No-op when QoS is off.
pub(crate) fn admit_blocking(engine: &Engine, tenant: TenantId, payload_bytes: u64) -> Result<()> {
    let Some(qos) = &engine.qos else { return Ok(()) };
    let state = qos.registry.state(tenant.raw() as u64);
    let m = qos.metrics_of(tenant);
    if !state.is_limited() {
        m.admitted.increment();
        return Ok(());
    }
    let start = clock::refresh();
    let deadline = start.saturating_add(qos.max_wait.as_nanos() as u64);
    loop {
        let now = clock::refresh();
        match state.try_admit_at(now, payload_bytes) {
            Ok(()) => {
                m.admitted.increment();
                m.wait.record_at(now, now.saturating_sub(start));
                return Ok(());
            }
            Err(hint_ns) => {
                if now >= deadline {
                    m.throttled.increment();
                    return Err(BlobError::QuotaExceeded { tenant });
                }
                let sleep = hint_ns.min(deadline - now).min(MAX_SLEEP.as_nanos() as u64).max(1);
                std::thread::sleep(Duration::from_nanos(sleep));
            }
        }
    }
}

/// Non-blocking admission (`write_pipelined` / `append_pipelined`):
/// one shot — a submission over quota fails immediately rather than
/// stalling the caller a pipelined API promised not to block. No-op
/// when QoS is off.
pub(crate) fn admit_nonblocking(
    engine: &Engine,
    tenant: TenantId,
    payload_bytes: u64,
) -> Result<()> {
    let Some(qos) = &engine.qos else { return Ok(()) };
    let state = qos.registry.state(tenant.raw() as u64);
    let m = qos.metrics_of(tenant);
    if state.is_limited() && state.try_admit_at(clock::refresh(), payload_bytes).is_err() {
        m.throttled.increment();
        return Err(BlobError::QuotaExceeded { tenant });
    }
    m.admitted.increment();
    Ok(())
}

/// Queue a pipelined completion stage. QoS off: straight onto the
/// pipeline pool (FIFO, the pre-PR 8 behaviour). QoS on: the job
/// enters its tenant's DRR lane and a drain ticket goes to the pool —
/// one ticket per push, each ticket serving the next DRR pick (not
/// necessarily the item its own push queued). Every push
/// happens-before its ticket's pop, so a ticket never finds the queue
/// short.
pub(crate) fn dispatch(engine: &Arc<Engine>, tenant: TenantId, cost: u64, job: Job) {
    let Some(qos) = &engine.qos else {
        engine.pipeline.execute(job);
        return;
    };
    let weight = qos.registry.state(tenant.raw() as u64).weight();
    qos.queue.push(tenant.raw() as u64, weight, cost.max(1), job);
    let eng = Arc::clone(engine);
    engine.pipeline.execute(move || {
        if let Some(qos) = &eng.qos {
            if let Some(job) = qos.queue.pop() {
                job();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use blobseer_types::{BlobError, QosConfig, TenantId, TenantQuota};

    fn store(qos: Option<QosConfig>) -> crate::BlobSeer {
        let mut b = crate::BlobSeer::builder()
            .page_size(1024)
            .data_providers(2)
            .metadata_providers(2)
            .io_threads(1)
            .pipeline_threads(2);
        if let Some(q) = qos {
            b = b.qos(q);
        }
        b.build().unwrap()
    }

    #[test]
    fn qos_off_is_fully_inert() {
        let store = store(None);
        let blob = store.create().for_tenant(TenantId(3));
        blob.append(&[1u8; 2048]).unwrap();
        let p = blob.append_pipelined(crate::Bytes::from(vec![2u8; 2048])).unwrap();
        p.wait().unwrap();
        // The facade methods fail typed rather than pretending.
        assert!(store.tenant_quota(TenantId(3)).is_err());
        assert!(store.tenant_qos_stats(TenantId(3)).is_err());
        assert!(store.set_tenant_quota(TenantId(3), TenantQuota::unlimited()).is_err());
        assert!(!store.metrics_text().contains("blobseer_qos_"));
    }

    #[test]
    fn nonblocking_submissions_fail_typed_over_quota() {
        let config = QosConfig::default()
            .with_tenant(7, TenantQuota { ops_per_sec: 2, ..TenantQuota::unlimited() });
        let store = store(Some(config));
        let blob = store.create().for_tenant(TenantId(7));
        let before = blob.recent_version().unwrap();
        let p1 = blob.append_pipelined(crate::Bytes::from(vec![1u8; 1024])).unwrap();
        let p2 = blob.append_pipelined(crate::Bytes::from(vec![2u8; 1024])).unwrap();
        // Burst of 2 ops spent; the third submission is refused with
        // zero side effects — no version was assigned.
        let err = blob.append_pipelined(crate::Bytes::from(vec![3u8; 1024])).unwrap_err();
        assert!(matches!(err, BlobError::QuotaExceeded { tenant } if tenant == TenantId(7)));
        let v = p2.wait().unwrap();
        p1.wait().unwrap();
        blob.sync(v).unwrap();
        assert_eq!(v.0, before.0 + 2, "the throttled submission left no version hole");
        // Conservation: every settled submission counted exactly once.
        let stats = store.tenant_qos_stats(TenantId(7)).unwrap();
        assert_eq!((stats.admitted, stats.throttled), (2, 1));
    }

    #[test]
    fn blocking_updates_wait_then_fail_at_the_deadline() {
        let config = QosConfig::default()
            .with_tenant(1, TenantQuota { ops_per_sec: 1, ..TenantQuota::unlimited() })
            .with_max_wait_ms(50);
        let store = store(Some(config));
        let blob = store.create().for_tenant(TenantId(1));
        blob.append(&[1u8; 64]).unwrap(); // burst of 1 spent
        let t0 = std::time::Instant::now();
        let err = blob.append(&[2u8; 64]).unwrap_err();
        assert!(matches!(err, BlobError::QuotaExceeded { .. }));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(50), "waited out the deadline");
        let stats = store.tenant_qos_stats(TenantId(1)).unwrap();
        assert_eq!((stats.admitted, stats.throttled), (1, 1));
        assert!(stats.wait.count >= 1, "the admitted op recorded its (zero) wait");
    }

    #[test]
    fn blocking_updates_ride_out_a_short_throttle() {
        // 1 op burst, 20 ops/s refill: the second append waits ~50 ms
        // for a token instead of failing (deadline is 5 s).
        let config = QosConfig::default().with_tenant(
            1,
            TenantQuota { ops_per_sec: 20, burst_ops: 1, ..TenantQuota::unlimited() },
        );
        let store = store(Some(config));
        let blob = store.create().for_tenant(TenantId(1));
        blob.append(&[1u8; 64]).unwrap();
        blob.append(&[2u8; 64]).unwrap(); // waits, succeeds
        let stats = store.tenant_qos_stats(TenantId(1)).unwrap();
        assert_eq!((stats.admitted, stats.throttled), (2, 0));
    }

    #[test]
    fn runtime_quota_adjustment_unthrottles() {
        let config = QosConfig::default()
            .with_tenant(4, TenantQuota { ops_per_sec: 1, ..TenantQuota::unlimited() })
            .with_max_wait_ms(20);
        let store = store(Some(config));
        let blob = store.create().for_tenant(TenantId(4));
        blob.append(&[1u8; 64]).unwrap();
        assert!(blob.append(&[2u8; 64]).is_err(), "over the 1 op/s quota");
        store.set_tenant_quota(TenantId(4), TenantQuota::unlimited()).unwrap();
        blob.append(&[3u8; 64]).unwrap();
        assert_eq!(store.tenant_quota(TenantId(4)), Ok(TenantQuota::unlimited()));
    }

    #[test]
    fn exposition_renders_labeled_tenant_series() {
        let config = QosConfig::default()
            .with_tenant(2, TenantQuota { bytes_per_sec: 1 << 30, ..TenantQuota::unlimited() });
        let store = store(Some(config));
        store.create().for_tenant(TenantId(2)).append(&[1u8; 1024]).unwrap();
        store.create().for_tenant(TenantId(9)).append(&[2u8; 1024]).unwrap();
        let text = store.metrics_text();
        assert!(text.contains("# TYPE blobseer_qos_admitted_total counter"));
        assert!(text.contains("blobseer_qos_admitted_total{tenant=\"2\"} 1"));
        assert!(text.contains("blobseer_qos_admitted_total{tenant=\"9\"} 1"));
        assert!(text.contains("blobseer_qos_throttled_total{tenant=\"2\"} 0"));
        assert!(text.contains("blobseer_qos_wait_seconds_count{tenant=\"2\"}"));
        // Token gauge only for the limited axis of the limited tenant.
        assert!(text.contains("blobseer_qos_tokens_bytes{tenant=\"2\"}"));
        assert!(!text.contains("blobseer_qos_tokens_ops{tenant=\"2\"}"));
        assert!(!text.contains("blobseer_qos_tokens_bytes{tenant=\"9\"}"));
        // Per-provider splits render alongside (satellite b).
        assert!(text.contains("# TYPE blobseer_provider_store_latency_seconds summary"));
        assert!(text.contains("blobseer_provider_store_latency_seconds_count{provider=\"0\"}"));
        assert!(text.contains("blobseer_provider_fetch_latency_seconds_count{provider=\"1\"}"));
    }

    #[test]
    fn weighted_drain_conserves_all_pipelined_updates() {
        // Two tenants, different weights, one blob each: every queued
        // stage must run exactly once and publish (the DRR drain must
        // not lose or double-serve tickets).
        let config = QosConfig::default()
            .with_tenant(1, TenantQuota { weight: 1, ..TenantQuota::unlimited() })
            .with_tenant(2, TenantQuota { weight: 4, ..TenantQuota::unlimited() });
        let store = store(Some(config));
        let blobs =
            [store.create().for_tenant(TenantId(1)), store.create().for_tenant(TenantId(2))];
        let mut pending = Vec::new();
        for round in 0..8u8 {
            for blob in &blobs {
                pending.push(blob.append_pipelined(crate::Bytes::from(vec![round; 1024])).unwrap());
            }
        }
        for p in pending {
            let blob_id = p.blob_id();
            let v = p.wait().unwrap();
            store.sync(blob_id, v).unwrap();
        }
        for blob in &blobs {
            assert_eq!(blob.latest().unwrap().len(), 8 * 1024);
            let stats = store.tenant_qos_stats(blob.tenant()).unwrap();
            assert_eq!((stats.admitted, stats.throttled), (8, 0));
        }
    }
}
