//! Deployment configuration.

use std::sync::Arc;
use std::time::Duration;

use blobseer_meta::MetaStore;
use blobseer_provider::{AllocationStrategy, DataProvider, PageStore, ProviderManager};
use blobseer_rt::ThreadPool;
use blobseer_types::{BlobError, PageIdGen, ProviderId, QosConfig, Result, StoreConfig};
use blobseer_version::{ConcurrencyMode, VersionManager};

use crate::engine::Engine;
use crate::metrics::EngineMetrics;
use crate::BlobSeer;

/// Configures and builds a [`BlobSeer`] deployment.
///
/// Defaults mirror [`StoreConfig::default`]: 64 KiB pages (the paper's
/// smaller evaluation page size), 16 data + 16 metadata providers,
/// round-robin placement and the paper's concurrent metadata mode.
#[derive(Clone)]
pub struct Builder {
    config: StoreConfig,
    strategy: AllocationStrategy,
    mode: ConcurrencyMode,
    stores: Option<Vec<Arc<dyn PageStore>>>,
    qos: Option<QosConfig>,
}

impl std::fmt::Debug for Builder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Builder")
            .field("config", &self.config)
            .field("strategy", &self.strategy)
            .field("mode", &self.mode)
            .field("custom_stores", &self.stores.as_ref().map(Vec::len))
            .field("qos", &self.qos)
            .finish()
    }
}

impl Builder {
    /// Builder with default settings.
    pub fn new() -> Self {
        Builder {
            config: StoreConfig::default(),
            strategy: AllocationStrategy::RoundRobin,
            mode: ConcurrencyMode::Concurrent,
            stores: None,
            qos: None,
        }
    }

    /// Page size (`psize`) in bytes; must be a power of two.
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// Number of data providers pages are striped over.
    pub fn data_providers(mut self, n: usize) -> Self {
        self.config.data_providers = n;
        self
    }

    /// Number of metadata providers (DHT buckets).
    pub fn metadata_providers(mut self, n: usize) -> Self {
        self.config.metadata_providers = n;
        self
    }

    /// Worker threads used for parallel page/metadata I/O.
    pub fn io_threads(mut self, n: usize) -> Self {
        self.config.client_io_threads = n;
        self
    }

    /// Bound on blocking waits (SYNC, in-flight metadata nodes).
    pub fn metadata_wait(mut self, timeout: Duration) -> Self {
        self.config.metadata_wait_ms = timeout.as_millis() as u64;
        self
    }

    /// Page-to-provider placement strategy.
    pub fn allocation(mut self, strategy: AllocationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Copies kept of every page (1 = no replication). Replicas go to
    /// the providers following the primary in registry order, so reads
    /// can fall back without extra metadata (the paper defers
    /// replication to future work, §3.2).
    pub fn replication(mut self, copies: usize) -> Self {
        self.config.replication = copies;
        self
    }

    /// Client-side metadata node cache capacity (0 disables). Tree
    /// nodes are immutable, so the cache needs no invalidation.
    pub fn metadata_cache(mut self, entries: usize) -> Self {
        self.config.metadata_cache_entries = entries;
        self
    }

    /// Fork-join chunking factor: parallel page/metadata batches are
    /// dispatched as at most `client_io_threads * k` range jobs. `0`
    /// restores per-item dispatch (the pre-chunking ablation baseline).
    pub fn io_chunks_per_thread(mut self, k: usize) -> Self {
        self.config.io_chunks_per_thread = k;
        self
    }

    /// Worker threads completing pipelined (non-blocking) updates —
    /// the practical bound on in-flight `write_pipelined` /
    /// `append_pipelined` completions making progress at once.
    pub fn pipeline_threads(mut self, n: usize) -> Self {
        self.config.pipeline_threads = n;
        self
    }

    /// Writer-lease TTL in version-manager logical-clock ticks (see
    /// [`StoreConfig::lease_ttl_ticks`]): how long an in-flight update
    /// may go without a lease renewal before the sweeper presumes its
    /// writer dead and aborts the version. The clock is logical — it
    /// advances with VM write operations and explicit
    /// [`crate::BlobSeer::advance_lease_clock`] calls — so expiry is
    /// deterministic under test.
    pub fn lease_ttl_ticks(mut self, ticks: u64) -> Self {
        self.config.lease_ttl_ticks = ticks;
        self
    }

    /// Opt-in wall-clock→tick mapping (see
    /// [`StoreConfig::lease_tick_interval_ms`]): when `ms > 0`, a
    /// background ticker thread advances the lease clock by one tick
    /// every `ms` milliseconds and sweeps whenever something expired —
    /// so a wedged writer in a fully *quiet* deployment is still
    /// aborted after ~`lease_ttl_ticks × ms` milliseconds of real
    /// time, with no traffic and no external
    /// [`crate::BlobSeer::advance_lease_clock`] calls. Default `0`
    /// (off): expiry then stays fully deterministic, which is what
    /// tests want. The ticker holds only a weak reference and exits by
    /// itself when the deployment is dropped.
    ///
    /// # Examples
    ///
    /// ```
    /// let store = blobseer::BlobSeer::builder()
    ///     .data_providers(2)
    ///     .metadata_providers(2)
    ///     .io_threads(1)
    ///     .pipeline_threads(1)
    ///     .lease_ttl_ticks(10_000)
    ///     .lease_tick_interval_ms(1) // wedged writers recover in ~10 s of wall time
    ///     .build()?;
    /// assert_eq!(store.config().lease_tick_interval_ms, 1);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn lease_tick_interval_ms(mut self, ms: u64) -> Self {
        self.config.lease_tick_interval_ms = ms;
        self
    }

    /// Record per-operation latency histograms (see
    /// [`StoreConfig::latency_metrics`]). Default `true`; turn off for
    /// an uninstrumented A/B baseline. DHT block-time recording is
    /// unaffected.
    ///
    /// # Examples
    ///
    /// ```
    /// let store = blobseer::BlobSeer::builder()
    ///     .data_providers(2)
    ///     .metadata_providers(2)
    ///     .io_threads(1)
    ///     .pipeline_threads(1)
    ///     .latency_metrics(false)
    ///     .build()?;
    /// let blob = store.create();
    /// blob.append(&[0u8; 64])?;
    /// assert_eq!(store.stats_snapshot().append.count, 0); // not recorded
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn latency_metrics(mut self, enabled: bool) -> Self {
        self.config.latency_metrics = enabled;
        self
    }

    /// Serve hot version-manager reads (open-latest, `recent_version`,
    /// latest-version snapshot views) wait-free from each blob's
    /// seqlock cell (see [`StoreConfig::lockfree_publication`]).
    /// Default `true`; `false` restores the all-locked read path as an
    /// A/B baseline. The `vm.lockfree_reads` counter in
    /// [`crate::BlobSeer::stats`] moves only on the seqlock path.
    ///
    /// # Examples
    ///
    /// ```
    /// let store = blobseer::BlobSeer::builder()
    ///     .data_providers(2)
    ///     .metadata_providers(2)
    ///     .io_threads(1)
    ///     .pipeline_threads(1)
    ///     .lockfree_publication(false)
    ///     .build()?;
    /// let blob = store.create();
    /// blob.append(&[0u8; 64])?;
    /// let _ = blob.latest()?;
    /// assert_eq!(store.stats().vm.lockfree_reads, 0); // locked baseline
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn lockfree_publication(mut self, enabled: bool) -> Self {
        self.config.lockfree_publication = enabled;
        self
    }

    /// Carve page payloads as refcounted slices of the update buffer
    /// (`true`, default) or as per-page copies (`false`, the ablation
    /// baseline measured by the bench trajectory harness).
    pub fn zero_copy_pages(mut self, enabled: bool) -> Self {
        self.config.zero_copy_pages = enabled;
        self
    }

    /// Extra store attempts per replica target before write-path
    /// failover gives up on it (see
    /// [`StoreConfig::store_retry_attempts`]); `0` fails over on the
    /// first error.
    pub fn store_retry_attempts(mut self, attempts: u32) -> Self {
        self.config.store_retry_attempts = attempts;
        self
    }

    /// Base of the deterministic linear backoff between store retries:
    /// attempt *n* sleeps `n ×` this duration (see
    /// [`StoreConfig::store_retry_backoff_ms`]). Default 0 (no sleep),
    /// which is what failure-injection tests want.
    pub fn store_retry_backoff(mut self, base: Duration) -> Self {
        self.config.store_retry_backoff_ms = base.as_millis() as u64;
        self
    }

    /// Slice length for blocked metadata waits (see
    /// [`StoreConfig::metadata_wait_slice_ms`]): a thread blocked on an
    /// in-flight tree node wakes every slice to run the lease-sweep
    /// self-help hook — *wait a bit, self-help, retry* — instead of
    /// sleeping out the full [`Builder::metadata_wait`] behind a dead
    /// writer. `Duration::ZERO` disables slicing (plain full-timeout
    /// waits); the overall deadline is unchanged either way.
    pub fn metadata_wait_slice(mut self, slice: Duration) -> Self {
        self.config.metadata_wait_slice_ms = slice.as_millis() as u64;
        self
    }

    /// Back each data provider with a caller-supplied [`PageStore`]
    /// (one provider per store, in order — overriding
    /// [`Builder::data_providers`]). This is the fault-injection seam:
    /// wrap stores in [`blobseer_provider::FaultPlan`] and keep the
    /// handles to take providers offline, inject errors or flip bits
    /// mid-workload.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use blobseer_provider::{FaultPlan, MemoryPageStore, PageStore};
    ///
    /// let plans: Vec<Arc<FaultPlan>> = (0..3)
    ///     .map(|_| Arc::new(FaultPlan::new(Arc::new(MemoryPageStore::new()))))
    ///     .collect();
    /// let store = blobseer::BlobSeer::builder()
    ///     .metadata_providers(2)
    ///     .io_threads(1)
    ///     .pipeline_threads(1)
    ///     .replication(2)
    ///     .page_stores(plans.iter().map(|p| Arc::clone(p) as Arc<dyn PageStore>).collect())
    ///     .build()?;
    /// let blob = store.create();
    /// plans[0].set_offline(true); // kill a provider; writes now fail over
    /// blob.append(&[7u8; 64])?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn page_stores(mut self, stores: Vec<Arc<dyn PageStore>>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Opt into multi-tenant QoS: per-tenant token-bucket admission on
    /// the update paths and deficit-weighted (instead of FIFO) drain of
    /// pipelined completion stages. Off by default — without this call
    /// the store behaves exactly as before and tenant tags are inert.
    /// See [`blobseer_types::QosConfig`] and `docs/OPERATIONS.md`
    /// ("tenant quotas").
    ///
    /// # Examples
    ///
    /// ```
    /// use blobseer::{QosConfig, TenantId, TenantQuota};
    ///
    /// let store = blobseer::BlobSeer::builder()
    ///     .data_providers(2)
    ///     .metadata_providers(2)
    ///     .io_threads(1)
    ///     .pipeline_threads(1)
    ///     .qos(QosConfig::default().with_tenant(
    ///         7,
    ///         TenantQuota { ops_per_sec: 2, ..TenantQuota::unlimited() },
    ///     ))
    ///     .build()?;
    /// let blob = store.create().for_tenant(TenantId(7));
    /// blob.append(&[1u8; 16])?;
    /// blob.append(&[2u8; 16])?;
    /// // Burst of 2 ops spent; the next append waits, then fails typed.
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn qos(mut self, config: QosConfig) -> Self {
        self.qos = Some(config);
        self
    }

    /// Concurrency mode — [`ConcurrencyMode::SerializedMetadata`] is the
    /// ablation baseline measured by experiment E5.
    pub fn concurrency_mode(mut self, mode: ConcurrencyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Start from an explicit [`StoreConfig`].
    pub fn config(mut self, config: StoreConfig) -> Self {
        self.config = config;
        self
    }

    /// Validate the configuration and assemble the deployment.
    pub fn build(self) -> Result<BlobSeer> {
        let Builder { mut config, strategy, mode, stores, qos } = self;
        if let Some(stores) = &stores {
            config.data_providers = stores.len();
        }
        config.validate().map_err(BlobError::Storage)?;
        if let Some(q) = &qos {
            q.validate().map_err(BlobError::Storage)?;
        }
        let wait = Duration::from_millis(config.metadata_wait_ms);
        let meta = MetaStore::new(config.metadata_providers, wait)
            .with_cache(config.metadata_cache_entries)
            .with_wait_slice(Duration::from_millis(config.metadata_wait_slice_ms));
        let metrics =
            EngineMetrics::new(config.latency_metrics, meta.wait_latency(), config.data_providers);
        let providers = match stores {
            Some(stores) => ProviderManager::new(
                stores
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| Arc::new(DataProvider::new(ProviderId(i as u32), s)))
                    .collect(),
                strategy,
            ),
            None => ProviderManager::with_memory_providers(config.data_providers, strategy),
        };
        let engine = Engine {
            vm: VersionManager::new(config.page_size, mode, wait)
                .with_lease_ttl(config.lease_ttl_ticks)
                .with_lockfree_reads(config.lockfree_publication),
            meta,
            metrics,
            providers,
            pool: ThreadPool::new(config.client_io_threads, "blobseer-io"),
            pipeline: ThreadPool::new_detached(config.pipeline_threads, "blobseer-pipe"),
            order_locks: Default::default(),
            sweep_gate: Default::default(),
            sweep_queued: Default::default(),
            update_pins: Default::default(),
            pidgen: PageIdGen::new(),
            qos: qos.map(|q| crate::qos::EngineQos::new(&q, config.page_size)),
            config,
        };
        let store = BlobSeer { engine: Arc::new(engine) };
        // The self-help hook closes over the engine that owns the
        // MetaStore — install it post-construction through a Weak so
        // the cycle cannot leak the deployment.
        let weak = Arc::downgrade(&store.engine);
        store.engine.meta.set_self_help(Arc::new(move || {
            if let Some(engine) = weak.upgrade() {
                crate::abort::self_help_on_wait(&engine);
            }
        }));
        if store.engine.config.lease_tick_interval_ms > 0 {
            spawn_lease_ticker(&store.engine);
        }
        Ok(store)
    }
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

/// The opt-in wall-clock lease ticker (`lease_tick_interval_ms > 0`):
/// maps *absolute elapsed time* to ticks, plus a sweep whenever the
/// cheap expiry check fires. Holds only a [`std::sync::Weak`] on the
/// engine — the thread notices the deployment's drop within one
/// interval and exits, so it is deliberately detached (nothing to
/// join, no shutdown plumbing).
///
/// Each wakeup advances the clock to `elapsed / interval` rather than
/// by one: an oversleeping ticker (loaded box, coarse OS timer versus
/// a 1 ms interval) then *catches up* instead of silently stretching
/// every tick, so `lease_ttl_ticks × interval` stays an honest
/// wall-clock bound on wedged-writer recovery. Elapsed time is read
/// off the metrics crate's monotone clock ([`clock::refresh`]), whose
/// coarse reading the rest of the system shares.
fn spawn_lease_ticker(engine: &Arc<Engine>) {
    use blobseer_metrics::clock;
    let weak = Arc::downgrade(engine);
    let interval = Duration::from_millis(engine.config.lease_tick_interval_ms);
    let interval_ns = interval.as_nanos() as u64;
    let spawned = std::thread::Builder::new().name("blobseer-lease-tick".into()).spawn(move || {
        let t0 = clock::refresh();
        let mut ticked = 0u64;
        loop {
            std::thread::sleep(interval);
            let Some(engine) = weak.upgrade() else { break };
            let target = (clock::refresh() - t0) / interval_ns;
            if target > ticked {
                engine.vm.advance_clock(target - ticked);
                ticked = target;
            }
            if engine.vm.has_expired_leases() {
                let _ = crate::abort::sweep_expired(&engine, None);
            }
            // The upgrade may have made this thread the engine's last
            // owner; dropping it here is safe (the pipeline pool is
            // detached for exactly this kind of reason).
        }
    });
    // Spawn failure (resource exhaustion) degrades to the documented
    // logical-clock-only behaviour rather than failing the build.
    let _ = spawned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let store = Builder::new().build().unwrap();
        assert_eq!(store.config().page_size, 64 * 1024);
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Builder::new().page_size(3000).build().is_err());
        assert!(Builder::new().data_providers(0).build().is_err());
    }

    #[test]
    fn lease_ticker_recovers_a_quiet_wedged_deployment() {
        // The ROADMAP "lease liveness in quiet deployments" scenario: a
        // writer dies mid-update and *nothing else happens* — no
        // traffic, no explicit clock advancement. With the wall-clock
        // ticker on, the sweeper still aborts the dead version.
        let store = Builder::new()
            .page_size(1024)
            .data_providers(2)
            .metadata_providers(2)
            .io_threads(1)
            .pipeline_threads(1)
            .lease_ttl_ticks(5)
            .lease_tick_interval_ms(1)
            .build()
            .unwrap();
        let blob = store.create();
        let v = blob
            .crash_append(crate::Bytes::from(vec![1u8; 1024]), crate::CrashPoint::AfterPrepare)
            .unwrap();
        // One-sided wait: the abort eventually lands (ttl * interval ≈
        // 5 ms plus scheduling noise); the deadline only bounds a hang.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !store.engine.vm.is_aborted(blob.id(), v).unwrap() {
            assert!(std::time::Instant::now() < deadline, "ticker never swept");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The blob is healthy again, with zero manual intervention.
        let v2 = blob.append(&[2u8; 8]).unwrap();
        blob.sync(v2).unwrap();
    }

    #[test]
    fn settings_propagate() {
        let store = Builder::new()
            .page_size(4096)
            .data_providers(3)
            .metadata_providers(5)
            .io_threads(2)
            .metadata_wait(Duration::from_millis(1234))
            .allocation(AllocationStrategy::LeastLoaded)
            .concurrency_mode(ConcurrencyMode::SerializedMetadata)
            .build()
            .unwrap();
        let cfg = store.config();
        assert_eq!(cfg.page_size, 4096);
        assert_eq!(cfg.data_providers, 3);
        assert_eq!(cfg.metadata_providers, 5);
        assert_eq!(cfg.client_io_threads, 2);
        assert_eq!(cfg.metadata_wait_ms, 1234);
    }
}
