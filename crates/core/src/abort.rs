//! Aborting wedged versions: the repair path behind writer fault
//! tolerance.
//!
//! A writer that dies between version assignment and version-manager
//! notification leaves a **hole** in the total order: every later
//! version is complete but cannot publish, and later writers' border
//! sets already point at tree nodes the dead writer will never store.
//! The paper defers client failures to future work; this module closes
//! the gap in three steps:
//!
//! 1. [`blobseer_version::VersionManager::begin_abort`] marks the
//!    version aborted (racing readers and the zombie writer's own
//!    `complete`/`renew_lease` now fail with the typed
//!    `BlobError::VersionAborted`) and hands back an
//!    [`blobseer_version::AbortTicket`];
//! 2. [`repair`] completes the dead version's tree under its own keys:
//!    the exact node skeleton the writer was expected to create, so
//!    later versions weave correctly and later appends keep their
//!    assigned offsets. Repair **fills gaps, never overwrites**
//!    (`put_new`): nodes the dead writer made durable before dying
//!    stay authoritative — later versions may already have read them —
//!    while every missing leaf is replaced by snapshot `vw − 1`'s
//!    bytes zero-extended to the assigned size. The hole's content is
//!    therefore deterministic given what the writer persisted: its own
//!    bytes where its leaves landed, predecessor bytes + zeros
//!    everywhere else (a writer that died before storing any metadata
//!    contributes nothing at all);
//! 3. `commit_abort` lets publication drain over the hole.
//!
//! Repair leaves reference **freshly stored pages** (copies of the
//! predecessor's bytes), never the predecessor's page ids: garbage
//! collection relies on the 1:1 leaf↔page property, which aliased pids
//! would break.
//!
//! ### Who aborts
//!
//! * a failing update aborts **itself** (blocking writers in
//!   `write::update`, pipeline stages in `pending`) — errors and
//!   panics retire the version instead of wedging the blob;
//! * [`crate::Blob::abort`] / [`crate::PendingWrite::abort`] abort
//!   explicitly (cancellation);
//! * [`sweep_expired`] — the lease sweeper — aborts writers whose
//!   lease lapsed, presumed dead. It runs opportunistically on the
//!   engine's pipeline pool after each completion stage
//!   ([`maybe_sweep`]), inline as self-help when a stage is about to
//!   block behind an expired lower version, and on demand via
//!   [`crate::BlobSeer::sweep_expired_leases`].
//!
//! ### Limits (documented, not hidden)
//!
//! A writer presumed dead that is actually alive is fenced three ways:
//! its `renew_lease`/`complete` fail typed, and both its node stores
//! and the repair's use insert-if-absent — whichever side stores a
//! position first wins and the tree never mixes *after* a reader saw
//! it. What insert-if-absent cannot fix: pages (data, not metadata)
//! the dead writer stored without their leaves ever landing are
//! leaked, and repair pages that lost the leaf race leak the same
//! way — reclaiming both is the orphan scrubber's job
//! ([`crate::BlobSeer::scrub_orphans`], `crate::scrub`). Size
//! `lease_ttl_ticks` generously — aborting a live writer is safe but
//! costs its update.

use std::cell::Cell;
use std::sync::Arc;

use blobseer_meta::{build_meta, TreeReader, UpdateContext};
use blobseer_types::{BlobError, BlobId, ByteRange, PageDescriptor, Result, Version};
use blobseer_version::AbortTicket;
use bytes::Bytes;

use crate::engine::Engine;
use crate::read::read_at_root;
use crate::write::store_one_replicated;

/// What a lease sweep did: versions it aborted, and versions it could
/// not abort *yet* (their repair needs a still-wedged lower version;
/// retried on the next sweep).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Versions aborted by this sweep (ascending per blob).
    pub aborted: Vec<(BlobId, Version)>,
    /// Expired versions whose abort did not complete this sweep.
    pub pending: Vec<(BlobId, Version)>,
}

impl SweepReport {
    /// `true` when the sweep found nothing to do.
    pub fn is_empty(&self) -> bool {
        self.aborted.is_empty() && self.pending.is_empty()
    }
}

thread_local! {
    /// The update-completion stage running on this thread, if any:
    /// `(blob, vw)` set by [`wait_scope`] for the duration of
    /// [`crate::write::finish_until`]. The DHT self-help hook reads it
    /// to scope its sweep strictly below the stage's own version.
    static WAIT_CONTEXT: Cell<Option<(BlobId, Version)>> = const { Cell::new(None) };
    /// `true` while this thread is inside repair machinery (a sweep or
    /// a single abort). The self-help hook no-ops under it: a repair's
    /// own metadata reads may block and fire the hook, and sweeping
    /// from there would either recurse or self-deadlock on the sweep
    /// gate this thread already holds.
    static IN_REPAIR: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker: this thread is a completion stage for `blob` at `vw`.
/// While held, the DHT self-help hook ([`self_help_on_wait`]) sweeps
/// only versions strictly below `vw` — never at or above, whose repair
/// would wait on the very metadata this stage has yet to write.
pub(crate) struct WaitScope {
    prev: Option<(BlobId, Version)>,
}

pub(crate) fn wait_scope(blob: BlobId, vw: Version) -> WaitScope {
    WaitScope { prev: WAIT_CONTEXT.replace(Some((blob, vw))) }
}

impl Drop for WaitScope {
    fn drop(&mut self) {
        WAIT_CONTEXT.set(self.prev);
    }
}

/// RAII marker for [`IN_REPAIR`]; nesting-safe (restores the previous
/// value, so a sweep calling [`abort_version`] stays marked).
struct RepairGuard(bool);

fn enter_repair() -> RepairGuard {
    RepairGuard(IN_REPAIR.replace(true))
}

impl Drop for RepairGuard {
    fn drop(&mut self) {
        IN_REPAIR.set(self.0);
    }
}

/// The metadata DHT's **self-help hook**, run between wait slices while
/// a thread is blocked on an in-flight tree node (see
/// `blobseer_meta::MetaStore::set_self_help`). The blocker may be a
/// writer whose lease has lapsed — in which case nobody else is coming
/// to publish that node — so instead of sleeping out the full timeout,
/// the blocked thread periodically checks for expired leases and runs
/// the sweep itself: wait a bit, self-help, retry.
///
/// Inside a completion stage the sweep is scoped strictly below the
/// stage's own version ([`WaitScope`]); elsewhere (plain readers,
/// boundary merges of blocking updates) it is the ordinary global
/// sweep. Re-entrant firing from a repair's own blocked reads is
/// suppressed ([`IN_REPAIR`]).
pub(crate) fn self_help_on_wait(engine: &Arc<Engine>) {
    if IN_REPAIR.get() {
        return;
    }
    match WAIT_CONTEXT.get() {
        Some((blob, vw)) => {
            if engine.vm.has_expired_below(blob, vw).unwrap_or(false) {
                let _ = sweep_expired(engine, Some((blob, vw)));
            }
        }
        None => {
            if engine.vm.has_expired_leases() {
                let _ = sweep_expired(engine, None);
            }
        }
    }
}

/// Abort an assigned-but-unpublished version: mark it at the version
/// manager, store the repair tree, commit. Typed errors
/// ([`BlobError::AbortConflict`]) when the version already completed,
/// published or aborted; on a repair failure the version stays marked
/// (readers already see `VersionAborted`) and the sweeper retries.
pub(crate) fn abort_version(engine: &Arc<Engine>, blob: BlobId, v: Version) -> Result<()> {
    let _guard = enter_repair();
    // The repair stores pages before their leaves land; pin it with
    // the scrubber's epoch cut (like any writer) so a concurrent
    // `scrub_orphans` never reclaims repair pages mid-flight.
    let _pin = engine.pin_update();
    let ticket = engine.vm.begin_abort(blob, v)?;
    repair(engine, blob, &ticket)?;
    match engine.vm.commit_abort(blob, v) {
        // A concurrent aborter (the sweeper retries `Aborting` versions)
        // committed between our repair and our commit: the abort we
        // were asked for happened — repairs are idempotent (`put_new`),
        // so whose nodes landed is immaterial.
        Err(BlobError::AbortConflict(_)) if engine.vm.is_aborted(blob, v).unwrap_or(false) => {
            Ok(())
        }
        other => other,
    }
}

/// Build and store the dead version's no-op tree; see the module docs.
/// Reads of snapshot `vw − 1` may wait on strictly lower in-flight
/// versions (the same rule as boundary merges), so repairs processed in
/// ascending version order cannot deadlock.
fn repair(engine: &Arc<Engine>, blob: BlobId, t: &AbortTicket) -> Result<()> {
    let psize = engine.psize();
    let lineage = engine.vm.lineage(blob)?;

    // Predecessor bytes overlapping the assigned page range, fetched in
    // one read; everything past `prev_size` reads as zeros.
    let start = t.range.first * psize;
    let pages_end = (t.range.first + t.range.count) * psize;
    let valid_end = pages_end.min(t.new_size);
    let prev_overlap_end = valid_end.min(t.prev_size);
    let old = if prev_overlap_end > start {
        let root = t.prev_root.ok_or_else(|| {
            BlobError::Internal("repair needs predecessor bytes but vw-1 is empty".into())
        })?;
        read_at_root(engine, &lineage, root, ByteRange::new(start, prev_overlap_end - start))?
    } else {
        Vec::new()
    };

    let providers = engine.providers.allocate(t.range.count as usize)?;
    let mut leaves = Vec::with_capacity(t.range.count as usize);
    for (slot, page) in t.range.iter().enumerate() {
        let page_start = page * psize;
        let page_valid_end = (page_start + psize).min(t.new_size);
        let mut payload = vec![0u8; (page_valid_end - page_start) as usize];
        if page_start < prev_overlap_end {
            let upto = prev_overlap_end.min(page_valid_end);
            let src = (page_start - start) as usize;
            let len = (upto - page_start) as usize;
            payload[..len].copy_from_slice(&old[src..src + len]);
        }
        let pid = engine.pidgen.next_id();
        store_one_replicated(engine, pid, providers[slot], Bytes::from(payload))?;
        leaves.push(PageDescriptor {
            pid,
            page_index: page,
            provider: providers[slot],
            valid_len: (page_valid_end - page_start) as u32,
        });
    }

    // Same skeleton, same border resolution the dead writer was
    // handed. Insert-if-absent: any node the dead writer durably
    // stored stays authoritative — later versions may already have
    // woven content from it (boundary merges, border links), and nodes
    // must stay immutable once visible. Repair only fills the gaps; a
    // zombie's late stores lose to already-placed repair nodes the
    // same way.
    let reader = TreeReader::new(&engine.meta, &lineage);
    let ctx = UpdateContext {
        vw: t.vw,
        range: t.range,
        new_root: t.new_root,
        overrides: t.overrides.clone(),
        ref_root: t.ref_root,
    };
    for (key, node) in build_meta(&reader, &ctx, &leaves)? {
        engine.meta.put_new(key, node);
    }
    Ok(())
}

/// Abort every expired lease (and retry stuck aborts), lowest version
/// first per blob. `below`, when set, restricts the sweep to the given
/// blob's versions strictly below the given one — the **self-help**
/// form used by a pipeline stage, which must never abort a version at
/// or above its own (that repair would wait on the stage's
/// still-unwritten metadata).
///
/// Locking discipline, chosen deliberately:
///
/// * **Global sweeps** (`below == None`) serialize on the sweep gate
///   and **wait** for it. Skipping instead would drop recovery
///   triggers — a lease that expires while a sweep is mid-flight (its
///   expired list already collected) would lose what may be its only
///   abort attempt. The wait is bounded (a sweep's repairs block at
///   most one metadata timeout each) and a waiting caller re-scans
///   fresh.
/// * **Self-help sweeps** run gate-free. Taking the gate from inside a
///   stage can deadlock-until-timeout: a gate-holding sweep may be
///   repairing a version whose predecessor metadata is owed by the
///   very stage now parked on the gate. Gate-free is safe because
///   aborts are individually race-proof — `begin_abort` retries
///   `Aborting` states, repairs are idempotent (`put_new`), and a
///   commit lost to a concurrent aborter is detected and absorbed.
pub(crate) fn sweep_expired(engine: &Arc<Engine>, below: Option<(BlobId, Version)>) -> SweepReport {
    let _guard = enter_repair();
    let mut report = SweepReport::default();
    let run = |blob: BlobId, v: Version, report: &mut SweepReport| {
        match abort_version(engine, blob, v) {
            Ok(()) => report.aborted.push((blob, v)),
            // Conflicts mean someone else resolved the version between
            // the scan and the abort — not pending work.
            Err(BlobError::AbortConflict(_)) => {}
            Err(_) => report.pending.push((blob, v)),
        }
    };
    if let Some((blob, limit)) = below {
        for v in engine.vm.expired_leases_below(blob, limit).unwrap_or_default() {
            run(blob, v, &mut report);
        }
        return report;
    }
    let _gate = engine.sweep_gate.lock();
    // Timed from gate acquisition (scan + repairs, not the wait for a
    // concurrent sweeper): the duration operators can act on when the
    // `lease_sweep` tail grows — see docs/OBSERVABILITY.md.
    let sweep_timer = engine.metrics.timer();
    for (blob, v) in engine.vm.expired_leases() {
        run(blob, v, &mut report);
    }
    crate::metrics::EngineMetrics::record(sweep_timer, &engine.metrics.lease_sweep_latency);
    report
}

/// Queue a background sweep on the pipeline pool if any lease looks
/// expired and no sweep is already queued. Called from completion
/// stages, so a deployment with pipelined traffic detects dead writers
/// without any dedicated timer thread.
pub(crate) fn maybe_sweep(engine: &Arc<Engine>) {
    use std::sync::atomic::Ordering;
    if !engine.vm.has_expired_leases() {
        return;
    }
    if engine.sweep_queued.swap(true, Ordering::SeqCst) {
        return;
    }
    let eng = Arc::clone(engine);
    engine.pipeline.execute(move || {
        eng.sweep_queued.store(false, Ordering::SeqCst);
        let _ = sweep_expired(&eng, None);
    });
}
