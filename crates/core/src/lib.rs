//! # BlobSeer
//!
//! A reproduction of *BlobSeer: How to Enable Efficient Versioning for
//! Large Object Storage under Heavy Access Concurrency* (Nicolae,
//! Antoniu, Bougé — EDBT/DAMAP 2009).
//!
//! BlobSeer stores huge binary large objects (blobs) striped into
//! fixed-size pages over many data providers. Every update (`WRITE` /
//! `APPEND`) produces a **new snapshot version** instead of mutating
//! data in place: new pages are stored, and a new metadata segment tree
//! is "weaved" with the trees of older versions so that unmodified
//! pages (and whole metadata subtrees) are physically shared. A
//! centralized version manager assigns versions and publishes them in
//! total order, giving atomic semantics, while writers build data *and*
//! metadata fully in parallel thanks to the partial-border-set protocol
//! of the paper's §4.2.
//!
//! ## Quickstart
//!
//! The API is organised around three typed handles — [`Blob`] (the
//! mutation surface), [`Snapshot`] (a version-pinned read view) and
//! [`PendingWrite`] (a pipelined, in-flight update):
//!
//! ```
//! use blobseer::{BlobSeer, Bytes, ByteRange};
//!
//! let store = BlobSeer::builder()
//!     .page_size(4096)
//!     .data_providers(8)
//!     .build()
//!     .expect("valid configuration");
//!
//! // CREATE — a new blob starts as the empty snapshot, version 0.
//! let blob = store.create();
//!
//! // APPEND returns the assigned snapshot version; SYNC gives
//! // read-your-writes.
//! let v1 = blob.append(b"hello, ").unwrap();
//! let v2 = blob.append(b"world").unwrap();
//! blob.sync(v2).unwrap();
//!
//! // A Snapshot pins one published version: the version manager is
//! // consulted once, at construction — every read after that is
//! // VM-free, however many threads share the handle.
//! let snap = blob.snapshot(v2).unwrap();
//! assert_eq!(snap.len(), 12);
//! assert_eq!(&snap.read(ByteRange::new(0, 12)).unwrap()[..], b"hello, world");
//!
//! // Zero-copy scatter reads return refcounted windows of the stored
//! // pages instead of assembling a contiguous buffer.
//! let scatter = snap.read_scatter(ByteRange::new(0, 12)).unwrap();
//! assert_eq!(scatter.iter().map(|b| b.len()).sum::<usize>(), 12);
//!
//! // WRITE overwrites a range, producing a third version; older
//! // snapshots remain readable forever.
//! let v3 = blob.write(b"HELLO", 0).unwrap();
//! blob.sync(v3).unwrap();
//! assert_eq!(&blob.snapshot(v3).unwrap().read(ByteRange::new(0, 5)).unwrap()[..], b"HELLO");
//! assert_eq!(&snap.read(ByteRange::new(0, 5)).unwrap()[..], b"hello");
//!
//! // Pipelined appends keep several updates in flight from one thread:
//! // the version is assigned (and order fixed) before the call returns,
//! // while completion runs on the engine's pipeline pool.
//! let p1 = blob.append_pipelined(Bytes::from(vec![b'!'; 4096])).unwrap();
//! let p2 = blob.append_pipelined(Bytes::from(vec![b'?'; 4096])).unwrap();
//! assert!(p1.version() < p2.version());
//! let v5 = p2.wait().unwrap();
//! blob.sync(v5).unwrap();
//!
//! // BRANCH forks cheaply from any published version.
//! let fork = blob.branch(v2).unwrap();
//! let f = fork.append(b"!!!").unwrap();
//! fork.sync(f).unwrap();
//! assert_eq!(fork.latest().unwrap().len(), 15);
//! ```
//!
//! The flat, id-keyed methods on [`BlobSeer`] (`store.read(id, v, ..)`,
//! `store.append(id, ..)`, ...) remain available as thin wrappers over
//! the same engine — convenient when blob ids travel through
//! serialization boundaries. Every flat method accepts anything that
//! names a blob ([`BlobRef`]): a [`BlobId`], `&Blob` or `&Snapshot`.
//!
//! The public entry point is [`BlobSeer`]; construct one with
//! [`BlobSeer::builder`]. All handles are cheaply cloneable and fully
//! thread-safe — the whole point of the system is heavy concurrent use.
//!
//! ## Writer fault tolerance
//!
//! Beyond the paper (which defers client failures to future work),
//! every update holds a **lease** on its assigned version: a writer
//! that dies mid-update is detected by lease expiry and **aborted** —
//! its version becomes a typed hole ([`BlobError::VersionAborted`])
//! that the total order skips, so every later version still
//! publishes. Failed or panicked updates abort themselves; explicit
//! cancellation is [`Blob::abort`] / [`PendingWrite::abort`]; crash
//! injection for tests is [`Blob::crash_write`] /
//! [`Blob::crash_append`] with [`CrashPoint`]. The storage dead
//! writers leak — pages stored before their leaf nodes landed — is
//! reclaimed by the **orphan scrubber**, [`BlobSeer::scrub_orphans`],
//! a provider-side mark-and-sweep that is safe to run against live
//! traffic. See `docs/ARCHITECTURE.md` for the failure model and the
//! lease state machine, `docs/OPERATIONS.md` for the maintenance
//! runbook, and `docs/FAILURES.md` for the error cookbook.

mod abort;
mod blob;
mod builder;
mod engine;
mod gc;
mod membership;
mod metrics;
mod pending;
mod qos;
mod read;
mod repair;
mod scrub;
mod snapshot;
mod stats;
mod write;

pub use abort::SweepReport;
pub use blob::{Blob, BlobRef};
pub use builder::Builder;
pub use gc::GcReport;
pub use membership::DrainReport;
pub use pending::PendingWrite;
pub use qos::TenantQosStats;
pub use repair::RepairReport;
pub use scrub::ScrubReport;
pub use snapshot::{ScatterRead, ScatterSegment, Snapshot};
pub use stats::{OpLatency, OpWindow, StatsSnapshot, StoreStats};
pub use write::CrashPoint;

// Re-export the vocabulary a user needs to drive the API — including
// the fault-injection seam ([`Builder::page_stores`] + [`FaultPlan`]).
pub use blobseer_provider::{
    AllocationStrategy, FaultPlan, FilePageStore, MembershipCounts, MemoryPageStore, PageStore,
    PlacementCandidate, PlacementPolicy, ProviderStats,
};
pub use blobseer_types::{
    BlobError, BlobId, ByteRange, PageId, ProviderId, QosConfig, Result, StoreConfig, TenantId,
    TenantQuota, TenantQuotaEntry, Version,
};
pub use blobseer_version::ConcurrencyMode;
// Re-exported so callers of the zero-copy entry points need no direct
// `bytes` dependency.
pub use bytes::Bytes;

use std::sync::Arc;

use engine::Engine;

/// A handle to a BlobSeer deployment: the paper's client interface
/// (§2.1) over an in-process cluster of data providers, metadata
/// providers (DHT), a provider manager and a version manager.
///
/// Clone handles freely; all clones share the same deployment.
#[derive(Clone)]
pub struct BlobSeer {
    engine: Arc<Engine>,
}

impl BlobSeer {
    /// Start configuring a deployment.
    pub fn builder() -> Builder {
        Builder::new()
    }

    /// A deployment with [`StoreConfig::default`] settings.
    pub fn new_default() -> Self {
        Self::builder().build().expect("default config is valid")
    }

    /// `CREATE`: register a new blob and return its [`Blob`] handle.
    /// The blob starts as the empty snapshot, version 0.
    pub fn create(&self) -> Blob {
        let id = self.engine.vm.create();
        Blob::new(Arc::clone(&self.engine), id)
    }

    /// A [`Blob`] handle for an id obtained elsewhere (a previous
    /// [`Blob::id`], a serialized reference, ...). Unvalidated:
    /// operations on a handle to an unknown id fail with
    /// [`BlobError::BlobNotFound`].
    pub fn blob(&self, id: BlobId) -> Blob {
        Blob::new(Arc::clone(&self.engine), id)
    }

    /// A version-pinned [`Snapshot`] of `blob` at published version
    /// `v`; see [`Blob::snapshot`].
    pub fn snapshot(&self, blob: impl BlobRef, v: Version) -> Result<Snapshot> {
        Snapshot::open(&self.engine, blob.blob_id(), v)
    }

    /// `WRITE(id, buffer, offset, size)`: replace `data.len()` bytes at
    /// `offset`, producing a new snapshot. Returns the assigned version
    /// `vw`; the snapshot becomes visible to readers when *published*
    /// (use [`BlobSeer::sync`] to wait). Fails if `offset` exceeds the
    /// size of snapshot `vw − 1`, or if `data` is empty.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`BlobSeer::write_bytes`] to skip that copy too.
    pub fn write(&self, blob: impl BlobRef, data: &[u8], offset: u64) -> Result<Version> {
        self.write_bytes(blob, Bytes::copy_from_slice(data), offset)
    }

    /// Zero-copy `WRITE`: like [`BlobSeer::write`], but takes ownership
    /// of a refcounted [`Bytes`] buffer. Fully-covered pages are stored
    /// as O(1) slices of `data` — no payload byte is copied anywhere on
    /// the store path, regardless of the replication factor.
    pub fn write_bytes(&self, blob: impl BlobRef, data: Bytes, offset: u64) -> Result<Version> {
        write::update(
            &self.engine,
            blob.blob_id(),
            data,
            write::Target::Write { offset },
            TenantId::DEFAULT,
        )
    }

    /// `APPEND(id, buffer, size)`: append `data` at the end of the
    /// previous snapshot. Returns the assigned version.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`BlobSeer::append_bytes`] to skip that copy too.
    pub fn append(&self, blob: impl BlobRef, data: &[u8]) -> Result<Version> {
        self.append_bytes(blob, Bytes::copy_from_slice(data))
    }

    /// Zero-copy `APPEND`: like [`BlobSeer::append`], but takes
    /// ownership of a refcounted [`Bytes`] buffer (see
    /// [`BlobSeer::write_bytes`]).
    pub fn append_bytes(&self, blob: impl BlobRef, data: Bytes) -> Result<Version> {
        write::update(&self.engine, blob.blob_id(), data, write::Target::Append, TenantId::DEFAULT)
    }

    /// `READ(id, v, buffer, offset, size)`: read `size` bytes at
    /// `offset` from *published* snapshot `v`. Fails when `v` is not
    /// yet published or the range exceeds the snapshot size.
    ///
    /// Allocates a fresh buffer per call; reuse one via
    /// [`BlobSeer::read_into`], or pin the version with
    /// [`BlobSeer::snapshot`] to also skip the per-call version-manager
    /// lookup.
    pub fn read(&self, blob: impl BlobRef, v: Version, offset: u64, size: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; size as usize];
        self.read_into(blob, v, offset, &mut buf)?;
        Ok(buf)
    }

    /// [`BlobSeer::read`] into a caller-supplied buffer (the paper's
    /// actual signature); reads exactly `buf.len()` bytes.
    pub fn read_into(
        &self,
        blob: impl BlobRef,
        v: Version,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<()> {
        read::read(&self.engine, blob.blob_id(), v, offset, buf)
    }

    /// `GET_RECENT(id)`: a recently published version — guaranteed ≥
    /// every version published before this call.
    pub fn get_recent(&self, blob: impl BlobRef) -> Result<Version> {
        self.engine.vm.get_recent(blob.blob_id())
    }

    /// `GET_SIZE(id, v)`: the size of published snapshot `v`.
    pub fn get_size(&self, blob: impl BlobRef, v: Version) -> Result<u64> {
        self.engine.vm.get_size(blob.blob_id(), v)
    }

    /// `SYNC(id, v)`: block until snapshot `v` is published ("read your
    /// writes", §2.1). Bounded by the configured metadata wait timeout.
    pub fn sync(&self, blob: impl BlobRef, v: Version) -> Result<()> {
        self.engine.vm.sync(blob.blob_id(), v, self.engine.wait_timeout())
    }

    /// `BRANCH(id, v)`: fork the blob at published version `v`. The new
    /// blob shares every snapshot up to and including `v` with the
    /// original — no data or metadata is copied — and evolves
    /// independently afterwards.
    pub fn branch(&self, blob: impl BlobRef, v: Version) -> Result<Blob> {
        let id = self.engine.vm.branch(blob.blob_id(), v)?;
        Ok(Blob::new(Arc::clone(&self.engine), id))
    }

    /// Retire (garbage-collect) every version of `blob` below
    /// `keep_from`: the versions become unreadable and their
    /// non-shared pages and tree nodes are reclaimed. Fails — without
    /// side effects — when `keep_from` is unpublished, updates are in
    /// flight, or a live branch pins older history. Extension beyond
    /// the paper; see `crates/core/src/gc.rs`.
    pub fn retire_versions(&self, blob: impl BlobRef, keep_from: Version) -> Result<GcReport> {
        gc::retire_versions(&self.engine, blob.blob_id(), keep_from)
    }

    /// Abort an assigned-but-unpublished version of `blob`; see
    /// [`Blob::abort`].
    pub fn abort(&self, blob: impl BlobRef, v: Version) -> Result<()> {
        abort::abort_version(&self.engine, blob.blob_id(), v)
    }

    /// Reclaim **orphaned pages**: a provider-side mark-and-sweep that
    /// deletes every stored page referenced by no metadata leaf —
    /// storage leaked by writers that died before their leaf nodes
    /// landed, and by repair pages that lost the `put_new` leaf race.
    /// Safe under full concurrency (no quiescence required): pages of
    /// in-flight operations are exempted by a page-id **epoch cut**,
    /// and the mark covers every retained version of every blob and
    /// branch, committed-abort repair trees and durable in-flight
    /// leaves included. Fails typed ([`BlobError::ScrubConflict`]) —
    /// with nothing deleted — if the mark races a `retire_versions`
    /// sweep; just rerun. Compose with
    /// [`BlobSeer::sweep_expired_leases`] (run it first so dead
    /// writers' versions are repaired and their leaks judged) and
    /// [`BlobSeer::retire_versions`] (which reclaims *retired* history;
    /// the scrubber reclaims what no history ever referenced). See
    /// `docs/OPERATIONS.md` for the runbook and the safety argument.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{Bytes, CrashPoint};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .lease_ttl_ticks(8).build()?;
    /// # let blob = store.create();
    /// let v1 = blob.append(&[7u8; 4096])?;
    /// // A writer dies after storing its pages but before any
    /// // metadata: the pages are leaked.
    /// blob.crash_append(Bytes::from(vec![9u8; 4096]), CrashPoint::AfterPrepare)?;
    /// store.advance_lease_clock(9);
    /// store.sweep_expired_leases(); // abort + repair the dead version
    /// let report = store.scrub_orphans()?;
    /// assert_eq!(report.pages_reclaimed, 1);
    /// assert_eq!(report.bytes_reclaimed, 4096);
    /// // Live data is untouched, and a second pass finds nothing.
    /// assert_eq!(&blob.snapshot(v1)?.read(blobseer::ByteRange::new(0, 4096))?[..4], [7u8; 4]);
    /// assert_eq!(store.scrub_orphans()?.pages_reclaimed, 0);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn scrub_orphans(&self) -> Result<ScrubReport> {
        scrub::scrub_orphans(&self.engine)
    }

    /// Restore every live page to **full replication**: mark live
    /// pages against metadata (the scrubber's machinery and epoch-cut
    /// safety argument), scan every provider's physical copy set, and
    /// diff each page against its expected replica chain — re-copying
    /// missing or checksum-failed chain copies from any copy that
    /// verifies (chain first, then the write-path failover fallbacks),
    /// and trimming redundant failover strays once a chain fully
    /// verifies. Repair **fills, never overwrites**: a copy that
    /// verifies is never rewritten (replacing a corrupt copy is the
    /// one exception — its bytes were provably not the page). A second
    /// pass over a healthy deployment is a no-op. Run it after
    /// provider failures, whenever `under_replicated_stores` moves, or
    /// on a schedule; see `docs/OPERATIONS.md` ("degraded mode").
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(3)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .replication(2).build()?;
    /// # let blob = store.create();
    /// let v = blob.append(&[7u8; 4096])?;
    /// blob.sync(v)?;
    /// // Lose one provider's copies wholesale: reads still succeed
    /// // (replica fallback), and repair restores full replication.
    /// # let victim = store.stats().providers.iter()
    /// #     .find(|p| p.pages > 0).map(|p| p.id).unwrap();
    /// store.fail_provider(victim)?;
    /// let report = store.repair_replicas()?;
    /// assert_eq!(report.providers_skipped, 1);
    /// store.recover_provider(victim)?;
    /// // A healthy deployment repairs to a no-op.
    /// let report = store.repair_replicas()?;
    /// assert_eq!(report.copies_repaired, 0);
    /// assert_eq!(report.pages_unrepairable, 0);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn repair_replicas(&self) -> Result<RepairReport> {
        repair::repair_replicas(&self.engine)
    }

    /// Run a lease sweep *now*, synchronously: abort every in-flight
    /// update whose writer lease lapsed (and retry any abort stuck on
    /// a still-wedged lower version). The same sweep runs
    /// opportunistically in the background — on the engine's pipeline
    /// pool after completion stages — so deployments with pipelined
    /// traffic rarely need to call this; tests call it (after
    /// [`BlobSeer::advance_lease_clock`]) for deterministic recovery.
    pub fn sweep_expired_leases(&self) -> SweepReport {
        abort::sweep_expired(&self.engine, None)
    }

    /// Advance the version manager's logical lease clock by `ticks`
    /// and return the new reading. The clock also advances implicitly
    /// with VM write operations (assign / renew / complete / abort);
    /// wall time never moves it, so lease expiry is deterministic.
    pub fn advance_lease_clock(&self, ticks: u64) -> u64 {
        self.engine.vm.advance_clock(ticks)
    }

    /// Failure injection: take a data provider offline. Pending pages
    /// stay on disk; requests fail until [`BlobSeer::recover_provider`].
    pub fn fail_provider(&self, id: ProviderId) -> Result<()> {
        self.engine.providers.provider(id)?.fail();
        Ok(())
    }

    /// Bring a failed data provider back online.
    pub fn recover_provider(&self, id: ProviderId) -> Result<()> {
        self.engine.providers.provider(id)?.recover();
        Ok(())
    }

    /// Register a brand-new in-memory data provider and return its id.
    /// The newcomer is **immediately** eligible: the next allocation
    /// may place primaries on it, and replica chains that wrap past the
    /// former last registry position continue onto it. Use
    /// [`BlobSeer::add_provider_store`] to bring your own backing
    /// store (e.g. a [`FilePageStore`]).
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(64).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let id = store.add_provider();
    /// assert_eq!(id, blobseer::ProviderId(2));
    /// assert_eq!(store.membership().active, 3);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn add_provider(&self) -> ProviderId {
        membership::add_provider(&self.engine, Arc::new(MemoryPageStore::new()))
    }

    /// [`BlobSeer::add_provider`] over a caller-supplied page store.
    pub fn add_provider_store(&self, store: Arc<dyn PageStore>) -> ProviderId {
        membership::add_provider(&self.engine, store)
    }

    /// Evacuate data provider `id` and retire it from the deployment.
    ///
    /// The provider first turns read-only (new stores fail over to the
    /// survivors), then its live pages are migrated to the
    /// post-retirement replica chains under the orphan scrubber's
    /// epoch-cut judgment — safe under concurrent writers, scrubs and
    /// GC — and once a scan proves it empty it becomes a registry
    /// tombstone: point lookups still resolve it (readers probing a
    /// stale chain take a clean miss) but placement, chains and
    /// maintenance sweeps skip it for good.
    ///
    /// Fails typed ([`BlobError::DrainConflict`]) — with the provider
    /// returned to service and **nothing** migrated-then-lost — when
    /// the provider is offline, already retired, the last active
    /// member, kept non-empty by in-flight updates past the engine's
    /// wait budget, or raced by a `retire_versions` that would make
    /// liveness a guess. See `docs/OPERATIONS.md` §6 for the runbook.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ProviderId;
    /// # let store = blobseer::BlobSeer::builder().page_size(64).data_providers(3)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).replication(2).build()?;
    /// # let blob = store.create();
    /// blob.append(&[7u8; 256])?;
    /// let before = store.read(&blob, blob.recent_version()?, 0, 256)?;
    /// let report = store.drain_provider(ProviderId(0))?;
    /// assert!(report.pages_evacuated > 0);
    /// // Every snapshot reads byte-identical over the survivors.
    /// assert_eq!(store.read(&blob, blob.recent_version()?, 0, 256)?, before);
    /// assert_eq!(store.membership().retired, 1);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn drain_provider(&self, id: ProviderId) -> Result<DrainReport> {
        membership::drain_provider(&self.engine, id)
    }

    /// Census of the provider membership states (registered / active /
    /// draining / retired) — the same numbers exported as
    /// `blobseer_providers_*` gauges by [`BlobSeer::metrics_text`].
    pub fn membership(&self) -> MembershipCounts {
        self.engine.providers.membership()
    }

    /// Hot-swap the page-placement policy to a built-in strategy. Only
    /// new allocations are affected: every stored page keeps its
    /// location, and replica chains are a function of registry order,
    /// not of placement — so the swap never invalidates a leaf.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(64).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// store.set_placement(blobseer::AllocationStrategy::LeastLoaded);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn set_placement(&self, strategy: AllocationStrategy) {
        self.engine.providers.set_placement(strategy);
    }

    /// [`BlobSeer::set_placement`] with a caller-implemented
    /// [`PlacementPolicy`] trait object.
    pub fn set_placement_policy(&self, policy: Arc<dyn PlacementPolicy>) {
        self.engine.providers.set_placement_policy(policy);
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.engine.config
    }

    /// Replace `tenant`'s QoS quota at runtime: fresh, full buckets
    /// under the new rates; in-flight admissions settle against the
    /// old ones. Fails typed when the deployment was built without
    /// [`Builder::qos`]. See `docs/OPERATIONS.md` ("tenant quotas").
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{QosConfig, TenantId, TenantQuota};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .qos(QosConfig::default()).build()?;
    /// let quota = TenantQuota { bytes_per_sec: 1 << 20, ..TenantQuota::unlimited() };
    /// store.set_tenant_quota(TenantId(3), quota)?;
    /// assert_eq!(store.tenant_quota(TenantId(3))?.bytes_per_sec, 1 << 20);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn set_tenant_quota(&self, tenant: TenantId, quota: TenantQuota) -> Result<()> {
        let qos = self.qos_state()?;
        qos.set_quota(tenant, &quota);
        Ok(())
    }

    /// The QoS quota `tenant` currently runs under (the configured
    /// default for tenants never adjusted explicitly). Fails typed
    /// when QoS is off.
    pub fn tenant_quota(&self, tenant: TenantId) -> Result<TenantQuota> {
        Ok(self.qos_state()?.quota(tenant))
    }

    /// Per-tenant QoS statistics: admitted / throttled counts and the
    /// admission-wait digest. Fails typed when QoS is off.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{QosConfig, TenantId};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .qos(QosConfig::default()).build()?;
    /// let blob = store.create().for_tenant(TenantId(1));
    /// blob.append(b"counted")?;
    /// let stats = store.tenant_qos_stats(TenantId(1))?;
    /// assert_eq!(stats.admitted, 1);
    /// assert_eq!(stats.throttled, 0);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn tenant_qos_stats(&self, tenant: TenantId) -> Result<TenantQosStats> {
        Ok(self.qos_state()?.stats_of(tenant))
    }

    fn qos_state(&self) -> Result<&qos::EngineQos> {
        self.engine.qos.as_ref().ok_or_else(|| {
            BlobError::Storage("QoS is not enabled; configure Builder::qos(...)".into())
        })
    }

    /// Deployment-wide statistics: physical storage, metadata footprint
    /// and per-component counters (used by the E3/E5/E6 experiments).
    pub fn stats(&self) -> StoreStats {
        stats::collect(&self.engine)
    }

    /// Tail-latency digests for every instrumented operation — append,
    /// write, snapshot reads, DHT block time, lease sweeps, scrub
    /// phases — as nearest-rank percentiles over the store's lifetime.
    /// Percentiles are histogram bucket edges, within 1/128 above the
    /// true sample; recording costs one relaxed atomic increment per
    /// operation and can be disabled with
    /// [`Builder::latency_metrics`] (DHT block time stays recorded).
    /// See `docs/OBSERVABILITY.md` for how to read the tails.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// let v = blob.append(&[0u8; 8192])?;
    /// blob.snapshot(v)?.read(blobseer::ByteRange::new(0, 8192))?;
    ///
    /// let snap = store.stats_snapshot();
    /// assert_eq!(snap.append.count, 1);
    /// assert_eq!(snap.read.count, 1);
    /// assert!(snap.append.p50_ns > 0);
    /// assert!(snap.append.p999_ns >= snap.append.p50_ns);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        stats::snapshot(&self.engine)
    }

    /// Prometheus-style text exposition of every registered metric:
    /// operation counters (`blobseer_*_ops_total`) and latency
    /// summaries (`blobseer_*_seconds{quantile="..."}` in seconds),
    /// plus deployment gauges (physical bytes/pages, metadata nodes),
    /// per-provider store/fetch latency splits
    /// (`blobseer_provider_*_latency_seconds{provider="N"}`), and —
    /// when QoS is configured — per-tenant admission counters, wait
    /// summaries and token gauges (`blobseer_qos_*{tenant="N"}`).
    /// Scrape-ready: serve the returned string verbatim. The metric
    /// reference is `docs/OBSERVABILITY.md`.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// # let blob = store.create();
    /// blob.append(&[0u8; 4096])?;
    /// let text = store.metrics_text();
    /// assert!(text.contains("blobseer_append_ops_total 1"));
    /// assert!(text.contains("# TYPE blobseer_append_latency_seconds summary"));
    /// assert!(text.contains("blobseer_physical_bytes 4096"));
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn metrics_text(&self) -> String {
        let mut out = self.engine.metrics.render();
        let stats = stats::collect(&self.engine);
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_physical_bytes",
            "payload bytes physically stored across all providers",
            stats.physical_bytes as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_physical_pages",
            "pages physically stored across all providers",
            stats.physical_pages as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_metadata_nodes",
            "metadata tree nodes stored in the DHT",
            stats.metadata_nodes as i64,
        );
        let members = self.engine.providers.membership();
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_providers_registered",
            "data providers ever registered (retired tombstones included)",
            members.registered as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_providers_active",
            "data providers eligible for new page placement",
            members.active as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_providers_draining",
            "data providers currently draining (read-only)",
            members.draining as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_providers_retired",
            "data providers retired by completed drains",
            members.retired as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_vm_read_views_total",
            "read-view resolutions served by the version manager",
            stats.vm.read_views as i64,
        );
        blobseer_metrics::write_gauge(
            &mut out,
            "blobseer_vm_lockfree_reads_total",
            "hot VM reads served wait-free from a blob's seqlock cell (no blob mutex)",
            stats.vm.lockfree_reads as i64,
        );
        self.engine.metrics.render_provider_latency(&mut out);
        if let Some(qos) = &self.engine.qos {
            qos.render_into(&mut out);
        }
        out
    }
}

impl std::fmt::Debug for BlobSeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobSeer").field("config", &self.engine.config).finish()
    }
}
