//! # BlobSeer
//!
//! A reproduction of *BlobSeer: How to Enable Efficient Versioning for
//! Large Object Storage under Heavy Access Concurrency* (Nicolae,
//! Antoniu, Bougé — EDBT/DAMAP 2009).
//!
//! BlobSeer stores huge binary large objects (blobs) striped into
//! fixed-size pages over many data providers. Every update (`WRITE` /
//! `APPEND`) produces a **new snapshot version** instead of mutating
//! data in place: new pages are stored, and a new metadata segment tree
//! is "weaved" with the trees of older versions so that unmodified
//! pages (and whole metadata subtrees) are physically shared. A
//! centralized version manager assigns versions and publishes them in
//! total order, giving atomic semantics, while writers build data *and*
//! metadata fully in parallel thanks to the partial-border-set protocol
//! of the paper's §4.2.
//!
//! ## Quickstart
//!
//! ```
//! use blobseer::BlobSeer;
//!
//! let store = BlobSeer::builder()
//!     .page_size(4096)
//!     .data_providers(8)
//!     .build()
//!     .expect("valid configuration");
//!
//! // CREATE — a new blob starts as the empty snapshot, version 0.
//! let blob = store.create();
//!
//! // APPEND returns the assigned snapshot version.
//! let v1 = store.append(blob, b"hello, ").unwrap();
//! let v2 = store.append(blob, b"world").unwrap();
//!
//! // SYNC gives read-your-writes; READ addresses any published version.
//! store.sync(blob, v2).unwrap();
//! assert_eq!(store.read(blob, v2, 0, 12).unwrap(), b"hello, world");
//! assert_eq!(store.read(blob, v1, 0, 7).unwrap(), b"hello, ");
//!
//! // WRITE overwrites a range, producing a third version; the first
//! // two remain readable forever.
//! let v3 = store.write(blob, b"HELLO", 0).unwrap();
//! store.sync(blob, v3).unwrap();
//! assert_eq!(store.read(blob, v3, 0, 12).unwrap(), b"HELLO, world");
//! assert_eq!(store.read(blob, v2, 0, 12).unwrap(), b"hello, world");
//!
//! // BRANCH forks cheaply from any published version.
//! let fork = store.branch(blob, v2).unwrap();
//! let f3 = store.append(fork, b"!!!").unwrap();
//! store.sync(fork, f3).unwrap();
//! assert_eq!(store.read(fork, f3, 0, 15).unwrap(), b"hello, world!!!");
//! ```
//!
//! The public entry point is [`BlobSeer`]; construct one with
//! [`BlobSeer::builder`]. All handles are cheaply cloneable and fully
//! thread-safe — the whole point of the system is heavy concurrent use.

mod builder;
mod engine;
mod gc;
mod read;
mod stats;
mod write;

pub use builder::Builder;
pub use gc::GcReport;
pub use stats::StoreStats;

// Re-export the vocabulary a user needs to drive the API.
pub use blobseer_provider::AllocationStrategy;
pub use blobseer_types::{BlobError, BlobId, ByteRange, ProviderId, Result, StoreConfig, Version};
pub use blobseer_version::ConcurrencyMode;
// Re-exported so callers of the zero-copy entry points need no direct
// `bytes` dependency.
pub use bytes::Bytes;

use std::sync::Arc;

use engine::Engine;

/// A handle to a BlobSeer deployment: the paper's client interface
/// (§2.1) over an in-process cluster of data providers, metadata
/// providers (DHT), a provider manager and a version manager.
///
/// Clone handles freely; all clones share the same deployment.
#[derive(Clone)]
pub struct BlobSeer {
    engine: Arc<Engine>,
}

impl BlobSeer {
    /// Start configuring a deployment.
    pub fn builder() -> Builder {
        Builder::new()
    }

    /// A deployment with [`StoreConfig::default`] settings.
    pub fn new_default() -> Self {
        Self::builder().build().expect("default config is valid")
    }

    /// `CREATE`: register a new blob; returns its globally-unique id.
    /// The blob starts as the empty snapshot, version 0.
    pub fn create(&self) -> BlobId {
        self.engine.vm.create()
    }

    /// `WRITE(id, buffer, offset, size)`: replace `data.len()` bytes at
    /// `offset`, producing a new snapshot. Returns the assigned version
    /// `vw`; the snapshot becomes visible to readers when *published*
    /// (use [`BlobSeer::sync`] to wait). Fails if `offset` exceeds the
    /// size of snapshot `vw − 1`, or if `data` is empty.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`BlobSeer::write_bytes`] to skip that copy too.
    pub fn write(&self, blob: BlobId, data: &[u8], offset: u64) -> Result<Version> {
        self.write_bytes(blob, Bytes::copy_from_slice(data), offset)
    }

    /// Zero-copy `WRITE`: like [`BlobSeer::write`], but takes ownership
    /// of a refcounted [`Bytes`] buffer. Fully-covered pages are stored
    /// as O(1) slices of `data` — no payload byte is copied anywhere on
    /// the store path, regardless of the replication factor.
    pub fn write_bytes(&self, blob: BlobId, data: Bytes, offset: u64) -> Result<Version> {
        write::update(&self.engine, blob, data, write::Target::Write { offset })
    }

    /// `APPEND(id, buffer, size)`: append `data` at the end of the
    /// previous snapshot. Returns the assigned version.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`BlobSeer::append_bytes`] to skip that copy too.
    pub fn append(&self, blob: BlobId, data: &[u8]) -> Result<Version> {
        self.append_bytes(blob, Bytes::copy_from_slice(data))
    }

    /// Zero-copy `APPEND`: like [`BlobSeer::append`], but takes
    /// ownership of a refcounted [`Bytes`] buffer (see
    /// [`BlobSeer::write_bytes`]).
    pub fn append_bytes(&self, blob: BlobId, data: Bytes) -> Result<Version> {
        write::update(&self.engine, blob, data, write::Target::Append)
    }

    /// `READ(id, v, buffer, offset, size)`: read `size` bytes at
    /// `offset` from *published* snapshot `v`. Fails when `v` is not
    /// yet published or the range exceeds the snapshot size.
    pub fn read(&self, blob: BlobId, v: Version, offset: u64, size: u64) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; size as usize];
        self.read_into(blob, v, offset, &mut buf)?;
        Ok(buf)
    }

    /// [`BlobSeer::read`] into a caller-supplied buffer (the paper's
    /// actual signature); reads exactly `buf.len()` bytes.
    pub fn read_into(&self, blob: BlobId, v: Version, offset: u64, buf: &mut [u8]) -> Result<()> {
        read::read(&self.engine, blob, v, offset, buf)
    }

    /// `GET_RECENT(id)`: a recently published version — guaranteed ≥
    /// every version published before this call.
    pub fn get_recent(&self, blob: BlobId) -> Result<Version> {
        self.engine.vm.get_recent(blob)
    }

    /// `GET_SIZE(id, v)`: the size of published snapshot `v`.
    pub fn get_size(&self, blob: BlobId, v: Version) -> Result<u64> {
        self.engine.vm.get_size(blob, v)
    }

    /// `SYNC(id, v)`: block until snapshot `v` is published ("read your
    /// writes", §2.1). Bounded by the configured metadata wait timeout.
    pub fn sync(&self, blob: BlobId, v: Version) -> Result<()> {
        self.engine.vm.sync(blob, v, self.engine.wait_timeout())
    }

    /// `BRANCH(id, v)`: fork the blob at published version `v`. The new
    /// blob shares every snapshot up to and including `v` with the
    /// original — no data or metadata is copied — and evolves
    /// independently afterwards.
    pub fn branch(&self, blob: BlobId, v: Version) -> Result<BlobId> {
        self.engine.vm.branch(blob, v)
    }

    /// Retire (garbage-collect) every version of `blob` below
    /// `keep_from`: the versions become unreadable and their
    /// non-shared pages and tree nodes are reclaimed. Fails — without
    /// side effects — when `keep_from` is unpublished, updates are in
    /// flight, or a live branch pins older history. Extension beyond
    /// the paper; see `crates/core/src/gc.rs`.
    pub fn retire_versions(&self, blob: BlobId, keep_from: Version) -> Result<GcReport> {
        gc::retire_versions(&self.engine, blob, keep_from)
    }

    /// Failure injection: take a data provider offline. Pending pages
    /// stay on disk; requests fail until [`BlobSeer::recover_provider`].
    pub fn fail_provider(&self, id: ProviderId) -> Result<()> {
        self.engine.providers.provider(id)?.fail();
        Ok(())
    }

    /// Bring a failed data provider back online.
    pub fn recover_provider(&self, id: ProviderId) -> Result<()> {
        self.engine.providers.provider(id)?.recover();
        Ok(())
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.engine.config
    }

    /// Deployment-wide statistics: physical storage, metadata footprint
    /// and per-component counters (used by the E3/E5/E6 experiments).
    pub fn stats(&self) -> StoreStats {
        stats::collect(&self.engine)
    }
}

impl std::fmt::Debug for BlobSeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobSeer").field("config", &self.engine.config).finish()
    }
}
