//! Elastic provider membership: live join, drain and retire.
//!
//! PR 9 makes the provider set a dynamic resource, the way the paper
//! promises ("new data providers may dynamically join and leave the
//! system", §4.3) but the reproduction so far fixed at build time:
//!
//! * [`add_provider`] registers a new provider at the end of the
//!   registry. It is **immediately** eligible: the next allocation may
//!   place primaries on it, and every replica chain that wraps past
//!   the former last position now continues onto it (the repairer
//!   reconciles the handful of wrap-around chains, like any other
//!   membership change).
//! * [`drain_provider`] evacuates a provider and retires it. The
//!   victim first turns **read-only** (stores refuse with the same
//!   typed error as a crash, so the write path's existing failover
//!   re-places in-flight copies with no new protocol), then its live
//!   pages are migrated to the survivors, and only once a scan proves
//!   it empty is it retired — a tombstone that keeps anchoring
//!   registry positions so every chain derivation stays deterministic.
//!
//! # Why a drain is safe under live writers
//!
//! The drain reuses the orphan scrubber's judgment machinery verbatim
//! (`crate::scrub`): the [`Engine::pin_update`] **page-id epoch cut**
//! splits the victim's pages into *judged* (below the epoch: the mark
//! walk over the per-blob VM cut decides live-or-orphan with the
//! scrubber's exactness guarantee) and *unjudged* (at or above the
//! epoch: some in-flight update may still reference them). Each round
//! migrates the judged-live pages (fill survivors first, delete from
//! the victim second — the page is never below full replication),
//! deletes the judged-dead ones (exactly what a scrub pass would do),
//! and defers the unjudged remainder. Because the victim is
//! read-only, only operations already in flight at drain start can
//! still land pages on it; as their pins drop, the epoch advances and
//! the unjudged set shrinks to nothing. A deployment whose writers
//! never quiesce within the engine's wait budget fails **typed**
//! ([`BlobError::DrainConflict`]) with the victim returned to service
//! — never silently under-migrated.
//!
//! Concurrent `retire_versions` is absorbed the same way the scrubber
//! absorbs it: per-blob re-cut on a moved retire generation, typed
//! conflict when the generation did not move (see
//! `crate::scrub`'s restart discipline).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use blobseer_meta::NodeKey;
use blobseer_provider::{DataProvider, PageStore};
use blobseer_types::{BlobError, PageId, ProviderId, Result};

use crate::engine::Engine;
use crate::scrub::mark_one_blob;

/// What a completed [`crate::BlobSeer::drain_provider`] did. All
/// counters are for this drain only; the lifetime aggregates live in
/// `metrics_text()` (`blobseer_drain_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// The provider that was drained and retired.
    pub provider: ProviderId,
    /// Live pages evacuated off the provider (deleted there after the
    /// survivors held a verified copy).
    pub pages_evacuated: usize,
    /// Payload bytes those evacuated pages freed on the provider.
    pub bytes_evacuated: u64,
    /// Copies written onto survivors to bring migrated pages to full
    /// replication (pages whose survivor chain was already complete
    /// needed none).
    pub copies_filled: u64,
    /// Payload bytes those fills carried.
    pub bytes_copied: u64,
    /// Fill attempts that failed at their target (offline survivor);
    /// the page still migrated if at least one survivor copy verified.
    pub copies_failed: u64,
    /// Pages on the victim judged dead by the scrub-cut rules and
    /// reclaimed in place (a drain doubles as a scrub of its victim).
    pub orphans_reclaimed: u64,
    /// Payload bytes those orphans freed.
    pub orphan_bytes: u64,
    /// Mark/scan/migrate rounds until a scan proved the victim empty.
    pub rounds: usize,
    /// Per-blob mark restarts absorbed (concurrent `retire_versions`);
    /// same mechanism as [`crate::ScrubReport::mark_restarts`].
    pub mark_restarts: u64,
}

impl DrainReport {
    fn new(provider: ProviderId) -> Self {
        DrainReport {
            provider,
            pages_evacuated: 0,
            bytes_evacuated: 0,
            copies_filled: 0,
            bytes_copied: 0,
            copies_failed: 0,
            orphans_reclaimed: 0,
            orphan_bytes: 0,
            rounds: 0,
            mark_restarts: 0,
        }
    }
}

/// Register a new provider over `store`; see module docs.
pub(crate) fn add_provider(engine: &Arc<Engine>, store: Arc<dyn PageStore>) -> ProviderId {
    engine.providers.add_provider(store)
}

/// Drain `id` and retire it; see module docs for the safety argument.
pub(crate) fn drain_provider(engine: &Arc<Engine>, id: ProviderId) -> Result<DrainReport> {
    let victim = engine.providers.provider(id)?;
    if victim.is_retired() {
        return Err(BlobError::DrainConflict(format!("{id} is already retired")));
    }
    if victim.is_draining() {
        return Err(BlobError::DrainConflict(format!("{id} is already being drained")));
    }
    if !victim.is_available() {
        return Err(BlobError::DrainConflict(format!(
            "{id} is offline; recover it (or repair around it) before draining"
        )));
    }
    let counts = engine.providers.membership();
    if counts.active < 2 {
        return Err(BlobError::DrainConflict(format!(
            "no survivor to migrate to: {} active provider(s) including {id}",
            counts.active
        )));
    }

    // Read-only from here: every new store to the victim fails over to
    // a survivor, so the victim's page set only shrinks.
    victim.begin_drain();
    match drain_rounds(engine, &victim) {
        Ok(report) => {
            victim.retire();
            Ok(report)
        }
        Err(e) => {
            // Nothing was migrated-then-lost: copies placed on
            // survivors are at worst strays the repairer trims once
            // the chain verifies. Return the victim to service.
            victim.end_drain();
            Err(e)
        }
    }
}

/// Mark/scan/migrate rounds until a scan proves the victim empty.
fn drain_rounds(engine: &Arc<Engine>, victim: &Arc<DataProvider>) -> Result<DrainReport> {
    let mut report = DrainReport::new(victim.id());
    let deadline = Instant::now() + engine.wait_timeout();
    let replication = engine.config.replication;
    loop {
        report.rounds += 1;

        // ── Mark: the scrubber's judgment — epoch cut, then the live
        // set with leaf-named primaries (shared walk with the
        // repairer), per-blob restart on a retire race.
        let mark_timer = engine.metrics.timer();
        let epoch = engine.scrub_pid_epoch();
        let (expected, restarts) = mark_expected(engine)?;
        report.mark_restarts += restarts;
        let held = victim
            .scan_pages()
            .map_err(|e| BlobError::DrainConflict(format!("victim went offline mid-drain: {e}")))?;
        crate::metrics::EngineMetrics::record(mark_timer, &engine.metrics.drain_mark_latency);
        if held.is_empty() {
            return Ok(report);
        }

        // ── Migrate/reclaim the judged pages; defer the unjudged.
        let copy_timer = engine.metrics.timer();
        let mut deferred = 0usize;
        for (pid, _) in held {
            if pid >= epoch {
                // Some in-flight update may still reference this page;
                // its pin will drop and a later round judges it.
                deferred += 1;
                continue;
            }
            match expected.get(&pid) {
                // Below the epoch and unmarked: dead by the scrubber's
                // exactness argument. Reclaim in place.
                None => {
                    if let Ok(Some(bytes)) = victim.delete_page(pid) {
                        report.orphans_reclaimed += 1;
                        report.orphan_bytes += bytes;
                    }
                }
                Some(&primary) => {
                    migrate_one(engine, victim, pid, primary, replication, &mut report)?
                }
            }
        }
        crate::metrics::EngineMetrics::record(copy_timer, &engine.metrics.drain_copy_latency);

        if Instant::now() >= deadline {
            return Err(BlobError::DrainConflict(format!(
                "{deferred} page(s) still unjudged (in-flight updates) at the drain deadline; \
                 quiesce or retry"
            )));
        }
        if deferred > 0 {
            // Waiting on writers to publish and drop their pins.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

/// The repairer's mark phase, failing typed for the drain: live pages
/// with their leaf-named primary, under per-blob retire-race restarts.
fn mark_expected(engine: &Arc<Engine>) -> Result<(HashMap<PageId, ProviderId>, u64)> {
    let cuts = engine.vm.scrub_cut();
    let mut visited: HashSet<NodeKey> = HashSet::new();
    let mut expected: HashMap<PageId, ProviderId> = HashMap::new();
    let mut restarts = 0u64;
    for mut cut in cuts {
        loop {
            let mut scratch_visited = visited.clone();
            let mut scratch_pages: HashMap<PageId, ProviderId> = HashMap::new();
            let mut on_leaf = |pid: PageId, provider: ProviderId| {
                scratch_pages.insert(pid, provider);
            };
            match mark_one_blob(engine, &cut, &mut scratch_visited, &mut on_leaf) {
                Ok(()) => {
                    visited = scratch_visited;
                    expected.extend(scratch_pages);
                    break;
                }
                Err(conflict) => {
                    let gen = engine.vm.retire_generation(cut.blob).unwrap_or(cut.retire_gen);
                    if gen == cut.retire_gen {
                        // The tree is inconsistent for a reason other
                        // than a retire that already finished: do not
                        // guess at liveness.
                        return Err(BlobError::DrainConflict(format!(
                            "mark could not assemble a live set for {:?}: {conflict}",
                            cut.blob
                        )));
                    }
                    restarts += 1;
                    cut = engine.vm.scrub_cut_for(cut.blob)?;
                }
            }
        }
    }
    Ok((expected, restarts))
}

/// Migrate one judged-live page off the victim: source a verified
/// copy, fill the post-retirement chain on the survivors (never
/// overwriting a verifying copy — the repairer's discipline), and only
/// then delete the victim's copy.
fn migrate_one(
    engine: &Arc<Engine>,
    victim: &Arc<DataProvider>,
    pid: PageId,
    primary: ProviderId,
    replication: usize,
    report: &mut DrainReport,
) -> Result<()> {
    // Where the copies must live once the victim is gone.
    let targets = engine.providers.chain_after_retire(primary, replication, victim.id())?;

    // Source: the victim's own copy when it verifies; otherwise any
    // verifying copy anywhere (chain first, then the failover
    // sequence) — a victim with a rotted copy does not block the
    // drain as long as some replica still has the page.
    let mut source = victim.fetch_page(pid).ok();
    if source.is_none() {
        let mut order = targets.clone();
        for id in engine.providers.fallbacks_of(primary, 1)? {
            if !order.contains(&id) {
                order.push(id);
            }
        }
        for id in order {
            if id == victim.id() {
                continue;
            }
            if let Ok(data) = engine.providers.provider(id).and_then(|p| p.fetch_page(pid)) {
                source = Some(data);
                break;
            }
        }
    }
    let Some(data) = source else {
        return Err(BlobError::DrainConflict(format!(
            "no verifying copy of {pid:?} anywhere; run repair_replicas or recover a provider, \
             then rerun the drain"
        )));
    };

    // Fill every target slot that is empty or corrupt; count how many
    // survivors end up holding a verified copy.
    let mut survivor_copies = 0u64;
    for &target in &targets {
        let Ok(p) = engine.providers.provider(target) else { continue };
        match p.fetch_page(pid) {
            Ok(_) => survivor_copies += 1, // verifying copy already in place
            Err(_) => match p.store_repaired_page(pid, data.clone()) {
                Ok(()) => {
                    survivor_copies += 1;
                    report.copies_filled += 1;
                    report.bytes_copied += data.len() as u64;
                    engine.metrics.pages_migrated.increment();
                    engine.metrics.bytes_migrated.add(data.len() as u64);
                }
                Err(_) => report.copies_failed += 1,
            },
        }
    }
    if survivor_copies == 0 {
        return Err(BlobError::DrainConflict(format!(
            "no survivor holds or accepted a copy of {pid:?}; the page stays on the provider"
        )));
    }

    // The survivors hold it; now — and only now — evacuate.
    if let Ok(Some(bytes)) = victim.delete_page(pid) {
        report.pages_evacuated += 1;
        report.bytes_evacuated += bytes;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::BlobSeer;

    fn store() -> BlobSeer {
        Builder::new()
            .page_size(16)
            .data_providers(3)
            .metadata_providers(2)
            .io_threads(2)
            .pipeline_threads(2)
            .replication(2)
            .build()
            .unwrap()
    }

    /// A stale cut whose blob has since retired versions re-cuts and
    /// restarts exactly once per blob (the scrubber's discipline).
    #[test]
    fn mark_restarts_when_retire_moved_the_generation() {
        let s = store();
        let blob = s.create();
        for i in 0..4u8 {
            blob.append(&[i; 64]).unwrap();
        }
        // Cut taken *before* the retire: its roots include versions
        // whose nodes retire_versions is about to sweep.
        let stale = s.engine.vm.scrub_cut();
        let keep = blob.recent_version().unwrap();
        s.retire_versions(blob.id(), keep).unwrap();

        let mut visited: HashSet<NodeKey> = HashSet::new();
        let mut restarts = 0u64;
        for mut cut in stale {
            loop {
                let mut scratch = visited.clone();
                match mark_one_blob(&s.engine, &cut, &mut scratch, &mut |_, _| {}) {
                    Ok(()) => {
                        visited = scratch;
                        break;
                    }
                    Err(_) => {
                        let gen = s.engine.vm.retire_generation(cut.blob).unwrap_or(cut.retire_gen);
                        assert_ne!(gen, cut.retire_gen, "generation must have moved");
                        restarts += 1;
                        cut = s.engine.vm.scrub_cut_for(cut.blob).unwrap();
                    }
                }
            }
        }
        assert_eq!(restarts, 1, "one re-cut absorbs the retire");
        // The fresh cut marks cleanly end-to-end.
        let (expected, more) = mark_expected(&s.engine).unwrap();
        assert_eq!(more, 0);
        assert!(!expected.is_empty());
    }

    /// A mark conflict whose blob generation did **not** move is a
    /// typed drain failure, not a guess: simulate the unmoved-gen race
    /// by handing the marker a cut that references swept roots under
    /// the *current* generation.
    #[test]
    fn unmoved_generation_conflict_fails_typed() {
        let s = store();
        let blob = s.create();
        for i in 0..4u8 {
            blob.append(&[i; 64]).unwrap();
        }
        let mut stale = s.engine.vm.scrub_cut();
        let keep = blob.recent_version().unwrap();
        s.retire_versions(blob.id(), keep).unwrap();
        // Forge the generation forward so the restart check concludes
        // "nothing moved" while the stale roots point at swept nodes.
        for cut in &mut stale {
            cut.retire_gen = s.engine.vm.retire_generation(cut.blob).unwrap();
        }
        let mut hit_conflict = false;
        for cut in stale {
            let mut visited: HashSet<NodeKey> = HashSet::new();
            if let Err(conflict) = mark_one_blob(&s.engine, &cut, &mut visited, &mut |_, _| {}) {
                hit_conflict = true;
                let gen = s.engine.vm.retire_generation(cut.blob).unwrap();
                assert_eq!(gen, cut.retire_gen);
                // This is the branch drain_provider turns into
                // DrainConflict; assert the mapping composes.
                let mapped = BlobError::DrainConflict(format!(
                    "mark could not assemble a live set for {:?}: {conflict}",
                    cut.blob
                ));
                assert!(matches!(mapped, BlobError::DrainConflict(_)));
            }
        }
        assert!(hit_conflict, "stale roots under an unmoved generation must conflict");
    }
}
