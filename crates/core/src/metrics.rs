//! Per-engine metric registry: every hot-path latency histogram and
//! operation counter, wired once at build time.
//!
//! One `EngineMetrics` per [`Engine`](crate::engine::Engine) — not
//! process-global — so a test spinning up many stores gets independent
//! registries. Operation *counters* always count (one relaxed
//! `fetch_add`); latency *timers* are gated on
//! `StoreConfig::latency_metrics` so benches can run an uninstrumented
//! A/B baseline. The DHT's own block-time histogram is created by the
//! DHT and merely registered here for exposition — its recording is
//! never gated (a blocking wait dwarfs its own timestamping).
//!
//! Metric names and semantics are documented in `docs/OBSERVABILITY.md`.

use std::sync::Arc;

use blobseer_metrics::{Counter, Registry, Timer, WindowedHistogram};

pub(crate) struct EngineMetrics {
    enabled: bool,
    registry: Registry,
    pub append_ops: Arc<Counter>,
    pub write_ops: Arc<Counter>,
    pub read_ops: Arc<Counter>,
    pub read_scatter_ops: Arc<Counter>,
    pub readv_ops: Arc<Counter>,
    pub append_latency: Arc<WindowedHistogram>,
    pub write_latency: Arc<WindowedHistogram>,
    pub read_latency: Arc<WindowedHistogram>,
    pub read_scatter_latency: Arc<WindowedHistogram>,
    pub readv_latency: Arc<WindowedHistogram>,
    pub write_prepare_latency: Arc<WindowedHistogram>,
    pub dht_get_wait_latency: Arc<WindowedHistogram>,
    pub lease_sweep_latency: Arc<WindowedHistogram>,
    pub scrub_mark_latency: Arc<WindowedHistogram>,
    pub scrub_sweep_latency: Arc<WindowedHistogram>,
    pub repair_mark_latency: Arc<WindowedHistogram>,
    pub repair_copy_latency: Arc<WindowedHistogram>,
    pub drain_mark_latency: Arc<WindowedHistogram>,
    pub drain_copy_latency: Arc<WindowedHistogram>,
    pub pages_migrated: Arc<Counter>,
    pub bytes_migrated: Arc<Counter>,
    pub failovers: Arc<Counter>,
    pub corrupt_pages: Arc<Counter>,
    pub under_replicated_stores: Arc<Counter>,
    /// Per-provider page-store latency, indexed by provider id. Kept
    /// out of the [`Registry`] — labeled series (`{provider="N"}`)
    /// need one shared `# TYPE` header, so exposition goes through
    /// [`EngineMetrics::render_provider_latency`] instead. Buckets
    /// allocate lazily, so idle providers cost a pointer each.
    pub provider_store_latency: Vec<Arc<WindowedHistogram>>,
    /// Per-provider page-fetch latency (successful fetches only),
    /// indexed by provider id; same exposition path as stores.
    pub provider_fetch_latency: Vec<Arc<WindowedHistogram>>,
}

impl EngineMetrics {
    /// Build and register the full metric set. `dht_wait` is the
    /// metadata DHT's shared block-time histogram; `providers` sizes
    /// the per-provider latency vectors.
    pub fn new(enabled: bool, dht_wait: Arc<WindowedHistogram>, providers: usize) -> EngineMetrics {
        let r = Registry::new();
        let append_ops = r.counter("blobseer_append_ops_total", "appends published");
        let write_ops = r.counter("blobseer_write_ops_total", "writes published");
        let read_ops = r.counter("blobseer_read_ops_total", "contiguous snapshot reads served");
        let read_scatter_ops =
            r.counter("blobseer_read_scatter_ops_total", "zero-copy scatter reads served");
        let readv_ops = r.counter("blobseer_readv_ops_total", "vectored snapshot reads served");
        let append_latency = r.histogram_seconds(
            "blobseer_append_latency_seconds",
            "append: version assignment to publication",
        );
        let write_latency = r.histogram_seconds(
            "blobseer_write_latency_seconds",
            "write: version assignment to publication",
        );
        let read_latency =
            r.histogram_seconds("blobseer_read_latency_seconds", "contiguous snapshot read");
        let read_scatter_latency = r.histogram_seconds(
            "blobseer_read_scatter_latency_seconds",
            "zero-copy scatter snapshot read",
        );
        let readv_latency =
            r.histogram_seconds("blobseer_readv_latency_seconds", "vectored snapshot read");
        let write_prepare_latency = r.histogram_seconds(
            "blobseer_write_prepare_latency_seconds",
            "update prepare: interior page store + version assignment",
        );
        r.register_histogram_seconds(
            "blobseer_dht_get_wait_seconds",
            "time blocked waiting for in-flight metadata to materialise",
            Arc::clone(&dht_wait),
        );
        let lease_sweep_latency = r.histogram_seconds(
            "blobseer_lease_sweep_latency_seconds",
            "expired-lease sweep: scan plus repairs",
        );
        let scrub_mark_latency = r.histogram_seconds(
            "blobseer_scrub_mark_latency_seconds",
            "orphan scrub mark phase: epoch cut + live-page walk",
        );
        let scrub_sweep_latency = r.histogram_seconds(
            "blobseer_scrub_sweep_latency_seconds",
            "orphan scrub sweep phase: provider-side deletion",
        );
        let repair_mark_latency = r.histogram_seconds(
            "blobseer_repair_mark_latency_seconds",
            "replica repair mark phase: epoch cut + live-page walk + provider scans",
        );
        let repair_copy_latency = r.histogram_seconds(
            "blobseer_repair_copy_latency_seconds",
            "replica repair copy phase: verify chains, re-copy missing/corrupt replicas",
        );
        let drain_mark_latency = r.histogram_seconds(
            "blobseer_drain_mark_latency_seconds",
            "provider drain mark phase: epoch cut + live-page walk + victim scan",
        );
        let drain_copy_latency = r.histogram_seconds(
            "blobseer_drain_copy_latency_seconds",
            "provider drain copy phase: re-place one round of victim pages on survivors",
        );
        let pages_migrated = r.counter(
            "blobseer_drain_pages_migrated_total",
            "page copies written onto survivors by provider drains",
        );
        let bytes_migrated = r.counter(
            "blobseer_drain_bytes_migrated_total",
            "payload bytes those drain migrations carried",
        );
        let failovers =
            r.counter("blobseer_failovers_total", "page stores re-placed onto a fallback provider");
        let corrupt_pages = r.counter(
            "blobseer_corrupt_pages_detected_total",
            "page copies that failed checksum verification",
        );
        let under_replicated_stores = r.counter(
            "blobseer_under_replicated_stores_total",
            "page stores that published fewer copies than the replication factor",
        );
        EngineMetrics {
            enabled,
            registry: r,
            append_ops,
            write_ops,
            read_ops,
            read_scatter_ops,
            readv_ops,
            append_latency,
            write_latency,
            read_latency,
            read_scatter_latency,
            readv_latency,
            write_prepare_latency,
            dht_get_wait_latency: dht_wait,
            lease_sweep_latency,
            scrub_mark_latency,
            scrub_sweep_latency,
            repair_mark_latency,
            repair_copy_latency,
            drain_mark_latency,
            drain_copy_latency,
            pages_migrated,
            bytes_migrated,
            failovers,
            corrupt_pages,
            under_replicated_stores,
            provider_store_latency: (0..providers)
                .map(|_| Arc::new(WindowedHistogram::new()))
                .collect(),
            provider_fetch_latency: (0..providers)
                .map(|_| Arc::new(WindowedHistogram::new()))
                .collect(),
        }
    }

    /// A started timer, or `None` when latency recording is off. Pair
    /// with [`EngineMetrics::record`] at the end of the operation.
    #[inline]
    pub fn timer(&self) -> Option<Timer> {
        self.enabled.then(Timer::start)
    }

    /// Stop `timer` (when latency recording is on) into `hist`.
    #[inline]
    pub fn record(timer: Option<Timer>, hist: &WindowedHistogram) {
        if let Some(t) = timer {
            t.stop(hist);
        }
    }

    /// Prometheus-style text exposition of every registered metric.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Append the per-provider store/fetch latency splits: one
    /// `# HELP`/`# TYPE` header per metric, then `{provider="N"}`
    /// labeled summary rows for every provider (including idle ones,
    /// so the set of series is stable across scrapes).
    pub fn render_provider_latency(&self, out: &mut String) {
        use std::fmt::Write;
        for (name, help, hists) in [
            (
                "blobseer_provider_store_latency_seconds",
                "single page store on one provider (successful attempt)",
                &self.provider_store_latency,
            ),
            (
                "blobseer_provider_fetch_latency_seconds",
                "single page fetch from one provider (successful attempt)",
                &self.provider_fetch_latency,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} summary");
            for (id, hist) in hists.iter().enumerate() {
                blobseer_metrics::write_summary_seconds_labeled(
                    out,
                    name,
                    &format!("provider=\"{id}\""),
                    &hist.snapshot(),
                );
            }
        }
    }
}
