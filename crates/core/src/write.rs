//! The WRITE/APPEND pipeline (paper Algorithm 2 plus the unaligned-write
//! completion scheme described in DESIGN.md §3.3).
//!
//! Order of operations:
//!
//! 1. **Pre-store interior pages** — every page fully covered by the
//!    update is stored immediately, in parallel, with *no*
//!    synchronization (for `APPEND` this happens right after version
//!    assignment, since the offset is only known then — paper §3.3:
//!    "an offset is directly provided by the version manager at the
//!    time when [the] snapshot version is assigned").
//! 2. **Register with the version manager** — obtain `vw`, the resolved
//!    offset, the partial border set and the published reference root.
//! 3. **Complete boundary pages** — a head/tail page only partially
//!    covered by the update is completed by reading the missing bytes
//!    from snapshot `vw − 1` (waiting on its in-flight metadata if
//!    necessary) and storing the merged page. This preserves the
//!    total-order semantics: snapshot `vw` equals snapshot `vw − 1`
//!    with the update applied.
//! 4. **Build and store metadata** — `BUILD_META` weaves the new tree
//!    with older versions; all nodes are stored in parallel
//!    (Algorithm 4 line 34).
//! 5. **Notify the version manager** — which publishes `vw` once all
//!    lower versions are published.

use std::sync::Arc;

use blobseer_meta::{build_meta, TreeReader, UpdateContext};
use blobseer_rt::try_parallel_jobs;
use blobseer_types::{BlobError, BlobId, ByteRange, PageDescriptor, ProviderId, Result, Version};
use blobseer_version::{AssignedUpdate, UpdateKind};
use bytes::Bytes;

use crate::engine::Engine;
use crate::read::read_at_root;

/// What kind of update the caller requested.
pub(crate) enum Target {
    /// Explicit-offset WRITE.
    Write {
        /// Absolute byte offset.
        offset: u64,
    },
    /// APPEND (offset resolved by the version manager).
    Append,
}

/// Failure injection: the pipeline prefix after which a simulated
/// writer dies ([`crate::Blob::crash_write`] /
/// [`crate::Blob::crash_append`]). Each variant leaves the assigned
/// version wedged — stored state up to the crash point, no
/// version-manager notification — exactly like a client process dying
/// there. The lease sweeper is what recovers the blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die right after the caller-side half: interior pages stored and
    /// the version assigned (its place in the total order is fixed).
    AfterPrepare,
    /// Die after storing the merged boundary pages, before any
    /// metadata.
    AfterBoundaryPages,
    /// Die mid metadata store with only the *inner* tree nodes durable
    /// — the parallel node store lost exactly the leaf puts. (A fixed
    /// subset keeps injected crashes deterministic: leaves are what
    /// give a dead version observable content, so "no leaves" makes
    /// this point content-equivalent to [`CrashPoint::AfterPrepare`]
    /// while still exercising repair against a partially-present
    /// tree.)
    AfterPartialMetadata,
    /// Die with all metadata durable but the version manager never
    /// notified.
    BeforeNotify,
}

/// The caller-thread half of an update, produced by [`prepare`]:
/// interior pages are stored and the version is assigned, fixing the
/// update's place in the total order. Everything else ([`finish`]) can
/// run on any thread.
pub(crate) struct Prepared {
    pub assigned: AssignedUpdate,
    data: Bytes,
    leaves: Vec<PageDescriptor>,
    /// Epoch-cut registration: taken before the first page id was
    /// allocated, held until the update's fate is settled (leaves
    /// durable, or the writer "died" — including the crash-injection
    /// early returns, whose drop of `Prepared` is the simulated
    /// process death). Protects the update's stored-but-unreferenced
    /// pages from a concurrent orphan scrub.
    pin: crate::engine::UpdatePin,
}

/// Steps 1–2 of the pipeline: pre-store every fully-covered page and
/// register the update with the version manager. This is the part that
/// *must* run on the caller's thread in submission order — it is what
/// makes two successive `append_pipelined` calls land in call order.
///
/// `data` is refcounted: interior pages are carved out of it as O(1)
/// [`Bytes::slice`] windows, so a page payload is copied at most once
/// per update (at the `&[u8]` API boundary, if the caller used it) no
/// matter how many replicas each page is stored on.
pub(crate) fn prepare(
    engine: &Arc<Engine>,
    blob: BlobId,
    data: Bytes,
    target: Target,
) -> Result<Prepared> {
    if data.is_empty() {
        return Err(BlobError::EmptyUpdate);
    }
    let prepare_timer = engine.metrics.timer();
    // Register with the scrubber's epoch cut before any page id is
    // allocated; see `Prepared::pin`.
    let pin = engine.pin_update();
    let size = data.len() as u64;

    // 1 (WRITE): interior pages need no version, store them now.
    let mut leaves = match target {
        Target::Write { offset } => store_interior_pages(engine, &data, offset)?,
        Target::Append => Vec::new(),
    };

    // 2: register the update, obtaining vw and the weaving inputs.
    let kind = match target {
        Target::Write { offset } => UpdateKind::Write { offset, size },
        Target::Append => UpdateKind::Append { size },
    };
    let assigned = engine.vm.assign(blob, kind)?;

    // 1 (APPEND): the offset is now known. A failure here is *after*
    // version assignment — retire the version instead of wedging the
    // blob (best effort; the lease sweeper retries otherwise).
    if matches!(target, Target::Append) {
        leaves = match store_interior_pages(engine, &data, assigned.offset) {
            Ok(leaves) => leaves,
            Err(e) => {
                let _ = crate::abort::abort_version(engine, blob, assigned.vw);
                return Err(e);
            }
        };
    }
    crate::metrics::EngineMetrics::record(prepare_timer, &engine.metrics.write_prepare_latency);
    Ok(Prepared { assigned, data, leaves, pin })
}

/// Steps 3–5 of the pipeline: complete boundary pages, build and store
/// the metadata tree, and notify the version manager. Runs inline for
/// blocking updates and on the engine's pipeline pool for
/// `write_pipelined`/`append_pipelined`. May block on metadata of
/// strictly lower in-flight versions (boundary merges), never higher —
/// so completions cannot deadlock each other.
pub(crate) fn finish(engine: &Arc<Engine>, blob: BlobId, prepared: Prepared) -> Result<Version> {
    finish_until(engine, blob, prepared, None)
}

/// [`finish`] with an optional crash injection point; see
/// [`CrashPoint`]. The real path renews the writer's lease as it
/// progresses — the renewal doubling as the fencing check that stops a
/// presumed-dead (already aborted) writer from storing further state.
pub(crate) fn finish_until(
    engine: &Arc<Engine>,
    blob: BlobId,
    prepared: Prepared,
    crash: Option<CrashPoint>,
) -> Result<Version> {
    // `_pin` keeps the epoch-cut registration alive for the whole
    // stage — including the crash-injection early returns, where its
    // drop is precisely the simulated writer death.
    let Prepared { assigned, data, mut leaves, pin: _pin } = prepared;
    // Scope for the DHT self-help hook: if this stage blocks on
    // in-flight metadata mid-wait, the hook may sweep expired leases
    // strictly below our version — never at or above (that repair
    // would wait on the metadata we have yet to write).
    let _wait_scope = crate::abort::wait_scope(blob, assigned.vw);

    // Self-help sweep: if some lower version's writer died, this stage
    // is about to block on its metadata — abort the blocker first
    // (never a version ≥ our own: its repair would wait on *us*). The
    // check is one atomic load while every lease is fresh, and locks
    // only this blob otherwise.
    if crash.is_none() && engine.vm.has_expired_below(blob, assigned.vw).unwrap_or(false) {
        crate::abort::sweep_expired(engine, Some((blob, assigned.vw)));
    }
    engine.vm.renew_lease(blob, assigned.vw)?;

    // 3: boundary pages (head/tail partially covered by the update).
    let lineage = engine.vm.lineage(blob)?;
    leaves.extend(store_boundary_pages(engine, &lineage, &assigned, &data)?);
    leaves.sort_by_key(|pd| pd.page_index);
    if crash == Some(CrashPoint::AfterBoundaryPages) {
        return Ok(assigned.vw);
    }

    // 4: build the new tree and store every node in parallel.
    let reader = TreeReader::new(&engine.meta, &lineage);
    let ctx = UpdateContext {
        vw: assigned.vw,
        range: assigned.range,
        new_root: assigned.new_root,
        overrides: assigned.overrides.clone(),
        ref_root: assigned.ref_root,
    };
    let nodes = Arc::new(build_meta(&reader, &ctx, &leaves)?);
    engine.vm.renew_lease(blob, assigned.vw)?;
    // build_meta emits leaves first; AfterPartialMetadata drops exactly
    // that prefix (see the enum docs).
    let store_from = match crash {
        Some(CrashPoint::AfterPartialMetadata) => leaves.len().min(nodes.len()),
        _ => 0,
    };
    let eng = Arc::clone(engine);
    let jobs = Arc::clone(&nodes);
    // Insert-if-absent: nodes are immutable once visible, so the only
    // way this key can already exist is an abort repair having placed
    // it — a presumed-dead writer racing its own repair must lose.
    try_parallel_jobs(
        &engine.pool,
        nodes.len() - store_from,
        engine.max_parallel_jobs(),
        move |i| {
            let (key, node) = jobs[store_from + i];
            eng.meta.put_new(key, node);
            Ok::<_, BlobError>(())
        },
    )?;
    if matches!(crash, Some(CrashPoint::AfterPartialMetadata) | Some(CrashPoint::BeforeNotify)) {
        return Ok(assigned.vw);
    }

    // 5: hand publication over to the version manager.
    engine.vm.complete(blob, assigned.vw)?;
    Ok(assigned.vw)
}

/// Run the full update pipeline; returns the assigned version. A
/// failure after version assignment retires the version (no-op abort)
/// instead of leaving a hole that wedges every later writer.
///
/// QoS admission (when configured) runs first, before any page store
/// or version assignment — a throttled update has zero side effects.
/// The blocking paths use deadline-bounded waiting admission; see
/// `crate::qos`.
pub(crate) fn update(
    engine: &Arc<Engine>,
    blob: BlobId,
    data: Bytes,
    target: Target,
    tenant: blobseer_types::TenantId,
) -> Result<Version> {
    crate::qos::admit_blocking(engine, tenant, data.len() as u64)?;
    let op_timer = engine.metrics.timer();
    let is_append = matches!(target, Target::Append);
    let prepared = prepare(engine, blob, data, target)?;
    let vw = prepared.assigned.vw;
    let published = finish(engine, blob, prepared).inspect_err(|e| {
        // VersionAborted means the sweeper (or an explicit abort)
        // already retired us; anything else is ours to clean up.
        if !matches!(e, BlobError::VersionAborted { .. }) {
            let _ = crate::abort::abort_version(engine, blob, vw);
        }
    })?;
    record_update(engine, is_append, op_timer);
    Ok(published)
}

/// Count a published update and record its end-to-end latency (only on
/// success: failed updates would pollute the tail with abort timing).
/// Shared by the blocking path above and the pipelined completion stage
/// in `crate::pending`.
pub(crate) fn record_update(
    engine: &Engine,
    is_append: bool,
    timer: Option<blobseer_metrics::Timer>,
) {
    if is_append {
        engine.metrics.append_ops.increment();
        crate::metrics::EngineMetrics::record(timer, &engine.metrics.append_latency);
    } else {
        engine.metrics.write_ops.increment();
        crate::metrics::EngineMetrics::record(timer, &engine.metrics.write_latency);
    }
}

/// Failure injection: run the pipeline only up to `point`, then
/// "crash" — return the assigned (now wedged) version without
/// notifying the version manager. See [`CrashPoint`].
pub(crate) fn update_crashing(
    engine: &Arc<Engine>,
    blob: BlobId,
    data: Bytes,
    target: Target,
    point: CrashPoint,
) -> Result<Version> {
    let prepared = prepare(engine, blob, data, target)?;
    let vw = prepared.assigned.vw;
    if point == CrashPoint::AfterPrepare {
        return Ok(vw);
    }
    finish_until(engine, blob, prepared, Some(point))
}

/// Store every page *fully covered* by the update, in parallel
/// (Algorithm 2 lines 4-9). Returns their descriptors.
fn store_interior_pages(
    engine: &Arc<Engine>,
    data: &Bytes,
    offset: u64,
) -> Result<Vec<PageDescriptor>> {
    let psize = engine.psize();
    let end = offset + data.len() as u64;
    let first_full = blobseer_types::div_ceil(offset, psize);
    let last_full_end = end / psize;
    if first_full >= last_full_end {
        return Ok(Vec::new());
    }
    let n = (last_full_end - first_full) as usize;
    let providers = engine.providers.allocate(n)?;

    // Carve each page as an O(1) refcounted window into the update
    // buffer — no payload bytes move here. The `zero_copy_pages = false`
    // ablation keeps the old per-page copy for A/B measurement.
    let zero_copy = engine.config.zero_copy_pages;
    let jobs: Vec<(u64, ProviderId, Bytes)> = (0..n)
        .map(|i| {
            let page_index = first_full + i as u64;
            let start = (page_index * psize - offset) as usize;
            let payload = if zero_copy {
                data.slice(start..start + psize as usize)
            } else {
                Bytes::copy_from_slice(&data[start..start + psize as usize])
            };
            (page_index, providers[i], payload)
        })
        .collect();
    store_pages(engine, jobs, psize as u32)
}

/// Store the merged head/tail boundary pages of an unaligned update
/// (DESIGN.md §3.3). No-op for page-aligned updates.
fn store_boundary_pages(
    engine: &Arc<Engine>,
    lineage: &blobseer_meta::Lineage,
    assigned: &AssignedUpdate,
    data: &Bytes,
) -> Result<Vec<PageDescriptor>> {
    let psize = engine.psize();
    let offset = assigned.offset;
    let end = offset + assigned.size;

    let mut boundary_pages: Vec<u64> = Vec::with_capacity(2);
    if !offset.is_multiple_of(psize) {
        boundary_pages.push(offset / psize);
    }
    if !end.is_multiple_of(psize) {
        let tail = (end - 1) / psize;
        if boundary_pages.last() != Some(&tail) {
            boundary_pages.push(tail);
        }
    }
    if boundary_pages.is_empty() {
        return Ok(Vec::new());
    }

    let providers = engine.providers.allocate(boundary_pages.len())?;
    let mut jobs = Vec::with_capacity(boundary_pages.len());
    let mut valid_lens = Vec::with_capacity(boundary_pages.len());
    for (slot, &page) in boundary_pages.iter().enumerate() {
        let page_start = page * psize;
        let valid_end = (page_start + psize).min(assigned.new_size);
        let mut payload = vec![0u8; (valid_end - page_start) as usize];

        // Bytes of this page coming from the update itself.
        let written = ByteRange::new(offset, assigned.size)
            .intersect(ByteRange::new(page_start, psize))
            .expect("boundary page intersects the update");
        let src = (written.offset - offset) as usize;
        let dst = (written.offset - page_start) as usize;
        payload[dst..dst + written.size as usize]
            .copy_from_slice(&data[src..src + written.size as usize]);

        // Missing head bytes come from snapshot vw−1.
        if page_start < offset && page == offset / psize {
            let old = ByteRange::new(page_start, offset - page_start);
            let bytes = read_old(engine, lineage, assigned, old)?;
            payload[..bytes.len()].copy_from_slice(&bytes);
        }
        // Missing tail bytes likewise (only when the old snapshot
        // actually had data past the update's end).
        if end < valid_end && page == (end - 1) / psize {
            let old = ByteRange::new(end, valid_end - end);
            let bytes = read_old(engine, lineage, assigned, old)?;
            let dst = (end - page_start) as usize;
            payload[dst..dst + bytes.len()].copy_from_slice(&bytes);
        }

        valid_lens.push((valid_end - page_start) as u32);
        jobs.push((page, providers[slot], Bytes::from(payload)));
    }

    // At most two pages; reuse the replicated store path so boundary
    // pages get the same durability as interior ones.
    let mut out = Vec::with_capacity(jobs.len());
    for ((page, provider, payload), valid_len) in jobs.into_iter().zip(valid_lens) {
        let pid = engine.pidgen.next_id();
        store_one_replicated(engine, pid, provider, payload)?;
        out.push(PageDescriptor { pid, page_index: page, provider, valid_len });
    }
    Ok(out)
}

/// Store one page on its primary plus the configured replica chain,
/// failing over when chain members are down. Succeeds when at least
/// one copy landed: the leaf names the primary, and readers fall back
/// along the same deterministic chain (and past it, in registry
/// order — see [`blobseer_provider::ProviderManager::fallbacks_of`]).
///
/// Failure discipline per target: up to `store_retry_attempts` extra
/// attempts with deterministic linear backoff
/// (`attempt * store_retry_backoff_ms`), then the copy is re-placed on
/// the next live fallback provider past the chain. Each re-placement
/// counts one `failovers_total`; publishing fewer copies than the
/// chain wanted counts one `under_replicated_stores_total` (the
/// repairer's cue). The update only fails when *no* provider in the
/// deployment accepted the page.
///
/// `payload` is refcounted, so every copy is a cheap clone of the same
/// window — no byte is ever copied per replica (with zero-copy
/// carving).
pub(crate) fn store_one_replicated(
    engine: &Arc<Engine>,
    pid: blobseer_types::PageId,
    primary: ProviderId,
    payload: Bytes,
) -> Result<()> {
    let mut targets = vec![primary];
    targets.extend(engine.providers.replicas_of(primary, engine.config.replication)?);
    let desired = targets.len();
    let mut stored = 0usize;
    let mut failed = 0usize;
    let mut last_err = None;
    for target in targets {
        match store_with_retry(engine, target, pid, &payload) {
            Ok(()) => stored += 1,
            Err(e) => {
                failed += 1;
                last_err = Some(e);
            }
        }
    }
    if failed > 0 {
        // Re-place each failed copy on the next fallback that accepts
        // it. The fallback sequence is a deterministic function of
        // (primary, registry order), so the repairer — and any reader —
        // recomputes where a failed-over copy can live with no extra
        // metadata.
        let mut fallbacks = engine.providers.fallbacks_of(primary, desired)?.into_iter();
        while failed > 0 {
            let Some(fallback) = fallbacks.next() else { break };
            match store_with_retry(engine, fallback, pid, &payload) {
                Ok(()) => {
                    stored += 1;
                    failed -= 1;
                    engine.metrics.failovers.increment();
                }
                Err(e) => last_err = Some(e),
            }
        }
    }
    if stored == 0 {
        return Err(last_err.unwrap_or(BlobError::NoAvailableProvider));
    }
    if stored < desired {
        engine.metrics.under_replicated_stores.increment();
    }
    Ok(())
}

/// One target's share of a replicated store: the initial attempt plus
/// up to `store_retry_attempts` retries, sleeping
/// `attempt * store_retry_backoff_ms` between tries (linear, fully
/// deterministic — no jitter, so failure tests replay exactly).
fn store_with_retry(
    engine: &Arc<Engine>,
    target: ProviderId,
    pid: blobseer_types::PageId,
    payload: &Bytes,
) -> Result<()> {
    let timer = engine.metrics.timer();
    let mut attempt = 0u32;
    loop {
        match engine.providers.provider(target).and_then(|p| p.store_page(pid, payload.clone())) {
            Ok(()) => {
                // Per-provider store split: the whole attempt sequence
                // (including backoff) lands on the provider that finally
                // accepted — which is what a capacity dashboard wants.
                if let (Some(t), Some(hist)) =
                    (timer, engine.metrics.provider_store_latency.get(target.0 as usize))
                {
                    t.stop(hist);
                }
                return Ok(());
            }
            Err(e) if attempt >= engine.config.store_retry_attempts => return Err(e),
            Err(_) => {
                attempt += 1;
                let backoff = attempt as u64 * engine.config.store_retry_backoff_ms;
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
    }
}

/// Read bytes of snapshot `vw − 1` (the update's predecessor), waiting
/// on its in-flight metadata when necessary.
fn read_old(
    engine: &Arc<Engine>,
    lineage: &blobseer_meta::Lineage,
    assigned: &AssignedUpdate,
    range: ByteRange,
) -> Result<Vec<u8>> {
    debug_assert!(
        range.end() <= assigned.prev_size,
        "old bytes {range:?} must lie within snapshot vw-1 ({} B)",
        assigned.prev_size
    );
    let prev_root = assigned
        .prev_root
        .ok_or_else(|| BlobError::Internal("boundary merge against an empty predecessor".into()))?;
    read_at_root(engine, lineage, prev_root, range)
}

/// Store a batch of full pages (plus replicas) in parallel; returns
/// their descriptors.
fn store_pages(
    engine: &Arc<Engine>,
    jobs: Vec<(u64, ProviderId, Bytes)>,
    valid_len: u32,
) -> Result<Vec<PageDescriptor>> {
    let n = jobs.len();
    let pids: Vec<_> = (0..n).map(|_| engine.pidgen.next_id()).collect();
    let shared = Arc::new((jobs, pids));
    let eng = Arc::clone(engine);
    let batch = Arc::clone(&shared);
    try_parallel_jobs(&engine.pool, n, engine.max_parallel_jobs(), move |i| {
        let (jobs, pids) = &*batch;
        let (_, provider, payload) = &jobs[i];
        store_one_replicated(&eng, pids[i], *provider, payload.clone())
    })?;
    let (jobs, pids) = &*shared;
    Ok(jobs
        .iter()
        .zip(pids)
        .map(|(&(page_index, provider, _), &pid)| PageDescriptor {
            pid,
            page_index,
            provider,
            valid_len,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSIZE: usize = 4096;

    fn build(zero_copy: bool) -> crate::BlobSeer {
        crate::BlobSeer::builder()
            .page_size(PSIZE as u64)
            .data_providers(4)
            .replication(2)
            .zero_copy_pages(zero_copy)
            .build()
            .unwrap()
    }

    /// Fetch every interior page of `v` back out of the providers and
    /// return the payload `Bytes` as stored.
    fn stored_pages(store: &crate::BlobSeer, leaves: &[PageDescriptor]) -> Vec<Bytes> {
        leaves
            .iter()
            .map(|pd| {
                store.engine.providers.provider(pd.provider).unwrap().fetch_page(pd.pid).unwrap()
            })
            .collect()
    }

    #[test]
    fn interior_pages_are_slices_of_the_source_buffer() {
        // The acceptance check for the zero-copy path: every stored
        // interior page must alias the caller's allocation (pointer
        // identity), proving no per-page payload copy happened.
        let store = build(true);
        let data = Bytes::from((0..4 * PSIZE).map(|i| i as u8).collect::<Vec<u8>>());
        let src = data.as_ptr() as usize..data.as_ptr() as usize + data.len();

        let leaves = store_interior_pages(&store.engine, &data, 0).unwrap();
        assert_eq!(leaves.len(), 4);
        for (i, page) in stored_pages(&store, &leaves).into_iter().enumerate() {
            let ptr = page.as_ptr() as usize;
            assert_eq!(page.len(), PSIZE);
            assert_eq!(
                ptr,
                src.start + i * PSIZE,
                "page {i} must alias the source buffer, not a copy"
            );
            assert!(src.contains(&ptr));
        }
    }

    #[test]
    fn unaligned_carving_slices_at_page_boundaries_of_the_blob() {
        // An update starting mid-page: interior pages begin at the
        // first in-buffer offset that is page-aligned in blob space.
        let store = build(true);
        let data = Bytes::from(vec![7u8; 3 * PSIZE]);
        let offset = (PSIZE / 2) as u64;
        let leaves = store_interior_pages(&store.engine, &data, offset).unwrap();
        assert_eq!(leaves.len(), 2);
        let src = data.as_ptr() as usize;
        for (slot, page) in stored_pages(&store, &leaves).into_iter().enumerate() {
            let expect = src + PSIZE / 2 + slot * PSIZE;
            assert_eq!(page.as_ptr() as usize, expect);
        }
    }

    #[test]
    fn baseline_mode_copies_instead_of_slicing() {
        let store = build(false);
        let data = Bytes::from(vec![1u8; 2 * PSIZE]);
        let src = data.as_ptr() as usize..data.as_ptr() as usize + data.len();
        let leaves = store_interior_pages(&store.engine, &data, 0).unwrap();
        for page in stored_pages(&store, &leaves) {
            assert!(
                !src.contains(&(page.as_ptr() as usize)),
                "ablation baseline must store copies, not aliases"
            );
        }
    }

    #[test]
    fn replicated_store_keeps_aliasing_every_copy() {
        // replication = 2: both the primary and the replica must hold
        // the same refcounted window — zero payload copies per update.
        let store = build(true);
        let data = Bytes::from(vec![9u8; PSIZE]);
        let src = data.as_ptr() as usize;
        let leaves = store_interior_pages(&store.engine, &data, 0).unwrap();
        let pd = leaves[0];
        let replicas = store.engine.providers.replicas_of(pd.provider, 2).unwrap();
        for target in std::iter::once(pd.provider).chain(replicas) {
            let page = store.engine.providers.provider(target).unwrap().fetch_page(pd.pid).unwrap();
            assert_eq!(page.as_ptr() as usize, src, "copy on {target:?} must alias the source");
        }
    }
}
