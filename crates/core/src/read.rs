//! The READ pipeline (paper Algorithm 1).
//!
//! 1. consult the version manager: is `v` published, how big is it;
//! 2. `READ_META`: walk the segment tree to assemble page descriptors;
//! 3. fetch all (partial) pages **in parallel** and fill the buffer.

use std::sync::Arc;

use blobseer_meta::Lineage;
use blobseer_meta::{read_meta, RootRef, TreeReader};
use blobseer_rt::try_parallel_jobs;
use blobseer_types::{BlobError, BlobId, ByteRange, PageSlice, Result, Version};
use bytes::Bytes;

use crate::engine::Engine;

/// Public READ: validates against the published snapshot, then delegates
/// to [`read_at_root_into`].
pub(crate) fn read(
    engine: &Arc<Engine>,
    blob: BlobId,
    v: Version,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let size = buf.len() as u64;
    let (snap_size, root) = engine.vm.read_view(blob, v)?;
    if offset + size > snap_size {
        return Err(BlobError::ReadBeyondEnd {
            blob,
            version: v,
            requested_end: offset + size,
            snapshot_size: snap_size,
        });
    }
    if size == 0 {
        return Ok(());
    }
    let root =
        root.ok_or_else(|| BlobError::Internal("non-empty snapshot without a tree root".into()))?;
    let lineage = engine.vm.lineage(blob)?;
    read_at_root_into(engine, &lineage, root, ByteRange::new(offset, size), buf)
}

/// Read `request` from the snapshot rooted at `root`, blocking on
/// in-flight metadata if needed. Used both by public READs (where the
/// tree is complete) and by the unaligned-write merge path (where the
/// predecessor tree may still be being written — waiting is on strictly
/// lower versions, so it cannot deadlock).
pub(crate) fn read_at_root(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    request: ByteRange,
) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; request.size as usize];
    read_at_root_into(engine, lineage, root, request, &mut buf)?;
    Ok(buf)
}

fn read_at_root_into(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    request: ByteRange,
    buf: &mut [u8],
) -> Result<()> {
    let psize = engine.psize();
    let reader = TreeReader::new(&engine.meta, lineage);
    let descriptors = read_meta(&reader, root, request, psize)?;

    let slices: Vec<PageSlice> = descriptors
        .into_iter()
        .filter_map(|pd| PageSlice::for_request(pd, request, psize))
        .collect();
    debug_assert_eq!(
        slices.iter().map(|s| s.within.size).sum::<u64>(),
        request.size,
        "slices must tile the request exactly"
    );

    // Algorithm 1 line 5: "for all (pid, i, provider) ∈ PD in parallel".
    let shared = Arc::new(slices);
    let eng = Arc::clone(engine);
    let jobs = Arc::clone(&shared);
    let max_jobs = engine.max_parallel_jobs();
    let parts: Vec<(u64, Bytes)> =
        try_parallel_jobs(&engine.pool, shared.len(), max_jobs, move |i| {
            let s = &jobs[i];
            let data = fetch_with_fallback(&eng, &s.descriptor, s.within)?;
            Ok::<_, BlobError>((s.buffer_offset, data))
        })?;
    for (dst, data) in parts {
        let dst = dst as usize;
        buf[dst..dst + data.len()].copy_from_slice(&data);
    }
    Ok(())
}

/// Fetch a page sub-range from its primary provider, falling back along
/// the deterministic replica chain when the primary is failed or lost
/// the copy. With replication = 1 this is a plain primary fetch.
fn fetch_with_fallback(
    engine: &Arc<Engine>,
    descriptor: &blobseer_types::PageDescriptor,
    within: ByteRange,
) -> Result<Bytes> {
    let fetch = |id| {
        engine
            .providers
            .provider(id)
            .and_then(|p| p.fetch_page_range(descriptor.pid, within.offset, within.size))
    };
    let mut last = match fetch(descriptor.provider) {
        Ok(data) => return Ok(data),
        Err(e) => e,
    };
    for replica in engine.providers.replicas_of(descriptor.provider, engine.config.replication)? {
        match fetch(replica) {
            Ok(data) => return Ok(data),
            Err(e) => last = e,
        }
    }
    Err(last)
}
