//! The READ pipeline (paper Algorithm 1).
//!
//! 1. consult the version manager: is `v` published, how big is it;
//! 2. `READ_META`: walk the segment tree to assemble page descriptors;
//! 3. fetch all (partial) pages **in parallel** and fill the buffer.
//!
//! The module is *handle-first*: [`crate::Snapshot`] performs step 1
//! once at construction and then calls straight into the planning
//! ([`plan_slices`], [`plan_slices_multi`]) and fetching
//! ([`fetch_slices`], [`fetch_slices_into`]) halves below. The flat
//! [`crate::BlobSeer::read`] facade re-resolves the view per call and
//! delegates to the same halves.

use std::sync::Arc;

use blobseer_meta::Lineage;
use blobseer_meta::{read_meta, read_meta_multi, RootRef, TreeReader};
use blobseer_rt::try_parallel_jobs;
use blobseer_types::{BlobError, BlobId, ByteRange, PageSlice, Result, Version};
use bytes::Bytes;

use crate::engine::Engine;

/// Public READ: validates against the published snapshot, then delegates
/// to [`read_at_root_into`]. Resolves size, root and lineage in a single
/// version-manager round-trip.
pub(crate) fn read(
    engine: &Arc<Engine>,
    blob: BlobId,
    v: Version,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let op_timer = engine.metrics.timer();
    let size = buf.len() as u64;
    let view = engine.vm.snapshot_view(blob, v)?;
    if offset + size > view.size {
        return Err(BlobError::ReadBeyondEnd {
            blob,
            version: v,
            requested_end: offset + size,
            snapshot_size: view.size,
        });
    }
    if size == 0 {
        return Ok(());
    }
    let root = view
        .root
        .ok_or_else(|| BlobError::Internal("non-empty snapshot without a tree root".into()))?;
    read_at_root_into(engine, &view.lineage, root, ByteRange::new(offset, size), buf)?;
    engine.metrics.read_ops.increment();
    crate::metrics::EngineMetrics::record(op_timer, &engine.metrics.read_latency);
    Ok(())
}

/// Read `request` from the snapshot rooted at `root`, blocking on
/// in-flight metadata if needed. Used both by public READs (where the
/// tree is complete) and by the unaligned-write merge path (where the
/// predecessor tree may still be being written — waiting is on strictly
/// lower versions, so it cannot deadlock).
pub(crate) fn read_at_root(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    request: ByteRange,
) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; request.size as usize];
    read_at_root_into(engine, lineage, root, request, &mut buf)?;
    Ok(buf)
}

pub(crate) fn read_at_root_into(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    request: ByteRange,
    buf: &mut [u8],
) -> Result<()> {
    let slices = plan_slices(engine, lineage, root, request)?;
    fetch_slices_into(engine, slices, buf)
}

/// `READ_META` + slicing: the page sub-ranges (with destination buffer
/// offsets) that tile `request` exactly.
pub(crate) fn plan_slices(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    request: ByteRange,
) -> Result<Vec<PageSlice>> {
    let psize = engine.psize();
    let reader = TreeReader::new(&engine.meta, lineage);
    let descriptors = read_meta(&reader, root, request, psize)?;
    let slices: Vec<PageSlice> = descriptors
        .into_iter()
        .filter_map(|pd| PageSlice::for_request(pd, request, psize))
        .collect();
    debug_assert_eq!(
        slices.iter().map(|s| s.within.size).sum::<u64>(),
        request.size,
        "slices must tile the request exactly"
    );
    Ok(slices)
}

/// Vectored planning: one segment-tree pass covering **all** of
/// `requests`, then per-request slicing. Returns one slice list per
/// request (each with buffer offsets relative to *its* request).
pub(crate) fn plan_slices_multi(
    engine: &Arc<Engine>,
    lineage: &Lineage,
    root: RootRef,
    requests: &[ByteRange],
) -> Result<Vec<Vec<PageSlice>>> {
    let psize = engine.psize();
    let reader = TreeReader::new(&engine.meta, lineage);
    let descriptors = read_meta_multi(&reader, root, requests, psize)?;
    Ok(requests
        .iter()
        .map(|&request| {
            descriptors
                .iter()
                .filter_map(|&pd| PageSlice::for_request(pd, request, psize))
                .collect()
        })
        .collect())
}

/// Algorithm 1 line 5: "for all (pid, i, provider) ∈ PD in parallel".
/// Fetches every slice and returns `(buffer_offset, data)` pairs, where
/// `data` is a refcounted window of the stored page — no payload copy
/// happens here (the scatter-read primitive).
pub(crate) fn fetch_slices(
    engine: &Arc<Engine>,
    slices: Vec<PageSlice>,
) -> Result<Vec<(u64, Bytes)>> {
    let shared = Arc::new(slices);
    let eng = Arc::clone(engine);
    let jobs = Arc::clone(&shared);
    let max_jobs = engine.max_parallel_jobs();
    try_parallel_jobs(&engine.pool, shared.len(), max_jobs, move |i| {
        let s = &jobs[i];
        let data = fetch_with_fallback(&eng, &s.descriptor, s.within)?;
        Ok::<_, BlobError>((s.buffer_offset, data))
    })
}

/// [`fetch_slices`] without destination offsets: fetch every slice and
/// return the payloads in input order ([`try_parallel_jobs`] preserves
/// it). The vectored-read path dedups identical page windows across
/// requests and indexes into this result to hand each request a
/// refcounted clone of the single fetch.
pub(crate) fn fetch_slices_data(
    engine: &Arc<Engine>,
    slices: Vec<PageSlice>,
) -> Result<Vec<Bytes>> {
    fetch_slices(engine, slices).map(|parts| parts.into_iter().map(|(_, data)| data).collect())
}

/// [`fetch_slices`], then gather into a contiguous caller buffer.
pub(crate) fn fetch_slices_into(
    engine: &Arc<Engine>,
    slices: Vec<PageSlice>,
    buf: &mut [u8],
) -> Result<()> {
    for (dst, data) in fetch_slices(engine, slices)? {
        let dst = dst as usize;
        buf[dst..dst + data.len()].copy_from_slice(&data);
    }
    Ok(())
}

/// Fetch a page sub-range from its primary provider, falling back along
/// the deterministic replica chain — and past it, through the fallback
/// sequence write-path failover re-places copies onto — when a copy is
/// missing, its provider is down, or it fails checksum verification.
///
/// A corrupt copy is treated as a miss (counted in
/// `corrupt_pages_detected_total`) and the walk continues; the typed
/// [`BlobError::PageCorrupt`] only surfaces when corruption was seen
/// and *no* provider produced a verified copy — the "every replica
/// rotted" case the repairer cannot fix either.
fn fetch_with_fallback(
    engine: &Arc<Engine>,
    descriptor: &blobseer_types::PageDescriptor,
    within: ByteRange,
) -> Result<Bytes> {
    let fetch = |id| {
        engine
            .providers
            .provider(id)
            .and_then(|p| p.fetch_page_range(descriptor.pid, within.offset, within.size))
    };
    let replicas = engine.providers.replicas_of(descriptor.provider, engine.config.replication)?;
    let fallbacks = engine.providers.fallbacks_of(descriptor.provider, 1 + replicas.len())?;
    let mut corrupt = None;
    let mut unavailable = None;
    let mut last = None;
    for id in std::iter::once(descriptor.provider).chain(replicas).chain(fallbacks) {
        let timer = engine.metrics.timer();
        match fetch(id) {
            Ok(data) => {
                // Per-provider fetch split: only the successful attempt
                // is attributed (a miss on a fallback that never held
                // the copy says nothing about that provider's latency).
                if let (Some(t), Some(hist)) =
                    (timer, engine.metrics.provider_fetch_latency.get(id.0 as usize))
                {
                    t.stop(hist);
                }
                return Ok(data);
            }
            Err(e @ BlobError::PageCorrupt { .. }) => {
                engine.metrics.corrupt_pages.increment();
                corrupt = Some(e);
            }
            // A down provider may still hold the copy; report that over
            // a mere miss from a fallback that never had it.
            Err(e @ BlobError::ProviderUnavailable(_)) => unavailable = Some(e),
            Err(e) => last = Some(e),
        }
    }
    Err(corrupt.or(unavailable).or(last).unwrap_or(BlobError::NoAvailableProvider))
}
