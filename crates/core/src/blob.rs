//! The [`Blob`] handle: the mutation surface of one blob.

use std::sync::Arc;

use blobseer_types::{BlobId, Result, TenantId, Version};
use bytes::Bytes;

use crate::engine::Engine;
use crate::pending::PendingWrite;
use crate::snapshot::Snapshot;
use crate::write::{self, CrashPoint, Target};
use crate::GcReport;

// A tiny deployment shared by the doctests below (hidden in each
// example): 4 KiB pages, 2 data + 2 metadata providers, 1 I/O thread.

/// A handle to one blob within a deployment: owns the [`BlobId`],
/// shares the engine, and hosts every mutating primitive plus snapshot
/// construction.
///
/// Returned by [`crate::BlobSeer::create`] and [`Blob::branch`].
/// Cheaply cloneable and fully thread-safe: clone it into as many
/// writer threads as you like — the engine's versioning is what
/// serializes them, not the handle.
#[derive(Clone)]
pub struct Blob {
    engine: Arc<Engine>,
    id: BlobId,
    /// The tenant this handle's updates are accounted to (QoS).
    /// [`TenantId::DEFAULT`] unless re-tagged via [`Blob::for_tenant`];
    /// inert when QoS is off.
    tenant: TenantId,
}

impl Blob {
    pub(crate) fn new(engine: Arc<Engine>, id: BlobId) -> Blob {
        Blob { engine, id, tenant: TenantId::DEFAULT }
    }

    /// A clone of this handle whose updates are accounted to `tenant`
    /// for QoS admission and scheduling. With QoS off
    /// ([`crate::Builder::qos`] never called) the tag is inert. Prefer
    /// one tenant per blob for pipelined traffic — see `crate::qos` on
    /// why cross-tenant pipelining to one blob wastes pipeline workers.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::TenantId;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create().for_tenant(TenantId(7));
    /// assert_eq!(blob.tenant(), TenantId(7));
    /// blob.append(b"accounted to tenant#7")?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn for_tenant(&self, tenant: TenantId) -> Blob {
        Blob { engine: Arc::clone(&self.engine), id: self.id, tenant }
    }

    /// The tenant this handle's updates are accounted to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The blob's globally-unique id (usable with the flat
    /// [`crate::BlobSeer`] facade).
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// // Ids round-trip through the flat facade.
    /// let same = store.blob(blob.id());
    /// assert_eq!(same.id(), blob.id());
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn id(&self) -> BlobId {
        self.id
    }

    /// `WRITE`: replace `data.len()` bytes at `offset`, producing a new
    /// snapshot; blocks until the update's metadata is durable. Returns
    /// the assigned version (use [`Blob::sync`] to await publication).
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`Blob::write_bytes`] to skip that copy too.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v1 = blob.append(b"hello, world")?;
    /// let v2 = blob.write(b"HELLO", 0)?;
    /// blob.sync(v2)?;
    /// // Both snapshots exist: updates never mutate in place.
    /// assert_eq!(&blob.snapshot(v2)?.read(ByteRange::new(0, 5))?[..], b"HELLO");
    /// assert_eq!(&blob.snapshot(v1)?.read(ByteRange::new(0, 5))?[..], b"hello");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn write(&self, data: &[u8], offset: u64) -> Result<Version> {
        self.write_bytes(Bytes::copy_from_slice(data), offset)
    }

    /// Zero-copy `WRITE` from a refcounted buffer (see
    /// [`crate::BlobSeer::write_bytes`]).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// blob.append_bytes(Bytes::from(vec![0u8; 8192]))?;
    /// // Fully-covered pages of the overwrite are stored as O(1)
    /// // slices of this buffer — no payload byte is copied.
    /// let v = blob.write_bytes(Bytes::from(vec![7u8; 4096]), 0)?;
    /// blob.sync(v)?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn write_bytes(&self, data: Bytes, offset: u64) -> Result<Version> {
        write::update(&self.engine, self.id, data, Target::Write { offset }, self.tenant)
    }

    /// `APPEND` at the end of the previous snapshot; blocks until the
    /// update's metadata is durable. Returns the assigned version.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`Blob::append_bytes`] to skip that copy too.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v1 = blob.append(b"log line 1\n")?;
    /// let v2 = blob.append(b"log line 2\n")?;
    /// assert!(v2 > v1, "appends are versioned in call order");
    /// blob.sync(v2)?;
    /// assert_eq!(blob.size(v2)?, 22);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn append(&self, data: &[u8]) -> Result<Version> {
        self.append_bytes(Bytes::copy_from_slice(data))
    }

    /// Zero-copy `APPEND` from a refcounted buffer.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let payload = Bytes::from(vec![42u8; 2 * 4096]);
    /// let v = blob.append_bytes(payload.clone())?; // clone is refcounted, O(1)
    /// blob.sync(v)?;
    /// assert_eq!(blob.size(v)?, payload.len() as u64);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn append_bytes(&self, data: Bytes) -> Result<Version> {
        write::update(&self.engine, self.id, data, Target::Append, self.tenant)
    }

    /// Non-blocking `WRITE`: returns as soon as the version is assigned
    /// and the fully-covered pages are stored; boundary completion,
    /// metadata weaving and publication hand-off continue on the
    /// engine's pipeline pool. Call order fixes version order, so a
    /// client can keep several updates in flight and still get
    /// sequential semantics.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// blob.append(&vec![0u8; 8192])?;
    /// let p = blob.write_pipelined(Bytes::from(vec![1u8; 4096]), 0)?;
    /// // The version is known immediately; completion runs elsewhere.
    /// let v = p.version();
    /// assert_eq!(p.wait()?, v);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn write_pipelined(&self, data: Bytes, offset: u64) -> Result<PendingWrite> {
        PendingWrite::spawn(&self.engine, self.id, data, Target::Write { offset }, self.tenant)
    }

    /// Non-blocking `APPEND`; see [`Blob::write_pipelined`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Bytes;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(2).build()?;
    /// let blob = store.create();
    /// // Two appends in flight from one thread; order is guaranteed.
    /// let p1 = blob.append_pipelined(Bytes::from(vec![1u8; 4096]))?;
    /// let p2 = blob.append_pipelined(Bytes::from(vec![2u8; 4096]))?;
    /// assert!(p1.version() < p2.version());
    /// let newest = p2.wait()?;
    /// blob.sync(newest)?;
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn append_pipelined(&self, data: Bytes) -> Result<PendingWrite> {
        PendingWrite::spawn(&self.engine, self.id, data, Target::Append, self.tenant)
    }

    /// `SYNC`: block until version `v` is published ("read your
    /// writes"). Bounded by the configured metadata wait timeout.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"data")?;
    /// blob.sync(v)?; // returns once v is published
    /// assert!(blob.recent_version()? >= v);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn sync(&self, v: Version) -> Result<()> {
        self.engine.vm.sync(self.id, v, self.engine.wait_timeout())
    }

    /// A version-pinned read view of published version `v`. Resolves
    /// size, root and lineage from the version manager **once**;
    /// subsequent reads through the [`Snapshot`] are VM-free.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::ByteRange;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"pin me")?;
    /// blob.sync(v)?;
    /// let snap = blob.snapshot(v)?;
    /// assert_eq!(&snap.read(ByteRange::new(0, 6))?[..], b"pin me");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn snapshot(&self, v: Version) -> Result<Snapshot> {
        Snapshot::open(&self.engine, self.id, v)
    }

    /// A snapshot of the most recently published version. One fused,
    /// wait-free version-manager read: the version and its view come
    /// from the blob's seqlock-published hot triple — no blob mutex,
    /// and no race window between resolving "latest" and resolving its
    /// view.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"newest")?;
    /// blob.sync(v)?;
    /// assert_eq!(blob.latest()?.version(), v);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn latest(&self) -> Result<Snapshot> {
        Snapshot::open_latest(&self.engine, self.id)
    }

    /// `GET_RECENT`: a recently published version — guaranteed ≥ every
    /// version published before this call, and always readable (holes
    /// left by aborted writers are skipped).
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Version;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// assert_eq!(blob.recent_version()?, Version(0), "every blob starts at v0");
    /// let v = blob.append(b"x")?;
    /// blob.sync(v)?;
    /// assert_eq!(blob.recent_version()?, v);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn recent_version(&self) -> Result<Version> {
        self.engine.vm.get_recent(self.id)
    }

    /// `GET_SIZE`: the size of published snapshot `v`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::Version;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// assert_eq!(blob.size(Version(0))?, 0);
    /// let v = blob.append(&[0u8; 100])?;
    /// blob.sync(v)?;
    /// assert_eq!(blob.size(v)?, 100);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn size(&self, v: Version) -> Result<u64> {
        self.engine.vm.get_size(self.id, v)
    }

    /// `BRANCH`: fork this blob at published version `v`. The new blob
    /// shares every snapshot up to and including `v` — no data or
    /// metadata is copied — and evolves independently afterwards.
    ///
    /// # Examples
    ///
    /// ```
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v = blob.append(b"shared")?;
    /// blob.sync(v)?;
    /// let fork = blob.branch(v)?;
    /// let f = fork.append(b"!")?;
    /// fork.sync(f)?;
    /// assert_eq!(fork.latest()?.len(), 7);
    /// assert_eq!(blob.latest()?.len(), 6, "the original is unaffected");
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn branch(&self, v: Version) -> Result<Blob> {
        let id = self.engine.vm.branch(self.id, v)?;
        Ok(Blob::new(Arc::clone(&self.engine), id))
    }

    /// Retire (garbage-collect) every version below `keep_from`; see
    /// [`crate::BlobSeer::retire_versions`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::BlobError;
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// let v1 = blob.append(&[1u8; 4096])?;
    /// let v2 = blob.write(&[2u8; 4096], 0)?;
    /// blob.sync(v2)?;
    /// let report = blob.retire_versions(v2)?;
    /// assert!(report.nodes_removed > 0);
    /// assert!(matches!(blob.snapshot(v1), Err(BlobError::VersionRetired { .. })));
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn retire_versions(&self, keep_from: Version) -> Result<GcReport> {
        crate::gc::retire_versions(&self.engine, self.id, keep_from)
    }

    /// Abort an assigned-but-unpublished version: retire it as a no-op
    /// so the total order skips the hole and every later version
    /// publishes. This is the manual entry point to the recovery the
    /// engine performs automatically — failed/panicked updates abort
    /// themselves, and the lease sweeper aborts writers presumed dead.
    /// The aborted version is never readable (reads and `sync` get
    /// [`crate::BlobError::VersionAborted`]); later snapshots read the
    /// hole as snapshot `v − 1`'s bytes, zero-extended — except pages
    /// whose leaf nodes the dead writer already made durable, which
    /// keep its bytes (see `crates/core/src/abort.rs`). Fails typed
    /// ([`crate::BlobError::AbortConflict`]) once the version
    /// completed, published or already aborted.
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{BlobError, Bytes, CrashPoint};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1).build()?;
    /// let blob = store.create();
    /// // A writer dies mid-update, wedging the version order...
    /// let dead = blob.crash_append(Bytes::from(vec![1u8; 4096]), CrashPoint::AfterPrepare)?;
    /// // ...until the hole is aborted; later writers then publish.
    /// blob.abort(dead)?;
    /// let v = blob.append(b"alive")?;
    /// blob.sync(v)?;
    /// assert!(matches!(blob.snapshot(dead), Err(BlobError::VersionAborted { .. })));
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn abort(&self, v: Version) -> Result<()> {
        crate::abort::abort_version(&self.engine, self.id, v)
    }

    /// Failure injection: run a `WRITE` only up to `point`, then
    /// "crash" — the assigned version is left wedged exactly as if the
    /// client process died there, and is returned so tests can watch
    /// the lease sweeper recover the blob. See [`crate::CrashPoint`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{Bytes, CrashPoint};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .lease_ttl_ticks(10).build()?;
    /// let blob = store.create();
    /// blob.append(&[9u8; 8192])?;
    /// let dead = blob.crash_write(Bytes::from(vec![0u8; 4096]), 0, CrashPoint::BeforeNotify)?;
    /// // Production recovery: the lease lapses, the sweeper aborts.
    /// store.advance_lease_clock(11);
    /// let swept = store.sweep_expired_leases();
    /// assert_eq!(swept.aborted, vec![(blob.id(), dead)]);
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn crash_write(&self, data: Bytes, offset: u64, point: CrashPoint) -> Result<Version> {
        write::update_crashing(&self.engine, self.id, data, Target::Write { offset }, point)
    }

    /// Failure injection: the `APPEND` form of [`Blob::crash_write`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use blobseer::{BlobError, Bytes, CrashPoint};
    /// # let store = blobseer::BlobSeer::builder().page_size(4096).data_providers(2)
    /// #     .metadata_providers(2).io_threads(1).pipeline_threads(1)
    /// #     .lease_ttl_ticks(10).build()?;
    /// let blob = store.create();
    /// let dead = blob.crash_append(Bytes::from(vec![1u8; 4096]), CrashPoint::AfterPrepare)?;
    /// // Readers racing the wedged version see it typed once aborted.
    /// store.advance_lease_clock(11);
    /// store.sweep_expired_leases();
    /// assert!(matches!(blob.sync(dead), Err(BlobError::VersionAborted { .. })));
    /// # Ok::<(), blobseer::BlobError>(())
    /// ```
    pub fn crash_append(&self, data: Bytes, point: CrashPoint) -> Result<Version> {
        write::update_crashing(&self.engine, self.id, data, Target::Append, point)
    }
}

impl std::fmt::Debug for Blob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blob").field("id", &self.id).finish()
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.engine, &other.engine)
    }
}

impl Eq for Blob {}

/// Anything that names a blob: a raw [`BlobId`], a [`Blob`] handle, or
/// a [`Snapshot`] — accepted by every flat [`crate::BlobSeer`] method,
/// so id-keyed code and handle-first code mix freely.
pub trait BlobRef {
    /// The named blob's id.
    fn blob_id(&self) -> BlobId;
}

impl BlobRef for BlobId {
    fn blob_id(&self) -> BlobId {
        *self
    }
}

impl BlobRef for &BlobId {
    fn blob_id(&self) -> BlobId {
        **self
    }
}

impl BlobRef for &Blob {
    fn blob_id(&self) -> BlobId {
        self.id
    }
}

impl BlobRef for &Snapshot {
    fn blob_id(&self) -> BlobId {
        Snapshot::blob_id(self)
    }
}
