//! The [`Blob`] handle: the mutation surface of one blob.

use std::sync::Arc;

use blobseer_types::{BlobId, Result, Version};
use bytes::Bytes;

use crate::engine::Engine;
use crate::pending::PendingWrite;
use crate::snapshot::Snapshot;
use crate::write::{self, Target};
use crate::GcReport;

/// A handle to one blob within a deployment: owns the [`BlobId`],
/// shares the engine, and hosts every mutating primitive plus snapshot
/// construction.
///
/// Returned by [`crate::BlobSeer::create`] and [`Blob::branch`].
/// Cheaply cloneable and fully thread-safe: clone it into as many
/// writer threads as you like — the engine's versioning is what
/// serializes them, not the handle.
#[derive(Clone)]
pub struct Blob {
    engine: Arc<Engine>,
    id: BlobId,
}

impl Blob {
    pub(crate) fn new(engine: Arc<Engine>, id: BlobId) -> Blob {
        Blob { engine, id }
    }

    /// The blob's globally-unique id (usable with the flat
    /// [`crate::BlobSeer`] facade).
    pub fn id(&self) -> BlobId {
        self.id
    }

    /// `WRITE`: replace `data.len()` bytes at `offset`, producing a new
    /// snapshot; blocks until the update's metadata is durable. Returns
    /// the assigned version (use [`Blob::sync`] to await publication).
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`Blob::write_bytes`] to skip that copy too.
    pub fn write(&self, data: &[u8], offset: u64) -> Result<Version> {
        self.write_bytes(Bytes::copy_from_slice(data), offset)
    }

    /// Zero-copy `WRITE` from a refcounted buffer (see
    /// [`crate::BlobSeer::write_bytes`]).
    pub fn write_bytes(&self, data: Bytes, offset: u64) -> Result<Version> {
        write::update(&self.engine, self.id, data, Target::Write { offset })
    }

    /// `APPEND` at the end of the previous snapshot; blocks until the
    /// update's metadata is durable. Returns the assigned version.
    ///
    /// Copies `data` exactly once, at this boundary; use
    /// [`Blob::append_bytes`] to skip that copy too.
    pub fn append(&self, data: &[u8]) -> Result<Version> {
        self.append_bytes(Bytes::copy_from_slice(data))
    }

    /// Zero-copy `APPEND` from a refcounted buffer.
    pub fn append_bytes(&self, data: Bytes) -> Result<Version> {
        write::update(&self.engine, self.id, data, Target::Append)
    }

    /// Non-blocking `WRITE`: returns as soon as the version is assigned
    /// and the fully-covered pages are stored; boundary completion,
    /// metadata weaving and publication hand-off continue on the
    /// engine's pipeline pool. Call order fixes version order, so a
    /// client can keep several updates in flight and still get
    /// sequential semantics.
    pub fn write_pipelined(&self, data: Bytes, offset: u64) -> Result<PendingWrite> {
        PendingWrite::spawn(&self.engine, self.id, data, Target::Write { offset })
    }

    /// Non-blocking `APPEND`; see [`Blob::write_pipelined`].
    pub fn append_pipelined(&self, data: Bytes) -> Result<PendingWrite> {
        PendingWrite::spawn(&self.engine, self.id, data, Target::Append)
    }

    /// `SYNC`: block until version `v` is published ("read your
    /// writes"). Bounded by the configured metadata wait timeout.
    pub fn sync(&self, v: Version) -> Result<()> {
        self.engine.vm.sync(self.id, v, self.engine.wait_timeout())
    }

    /// A version-pinned read view of published version `v`. Resolves
    /// size, root and lineage from the version manager **once**;
    /// subsequent reads through the [`Snapshot`] are VM-free.
    pub fn snapshot(&self, v: Version) -> Result<Snapshot> {
        Snapshot::open(&self.engine, self.id, v)
    }

    /// A snapshot of the most recently published version.
    pub fn latest(&self) -> Result<Snapshot> {
        let v = self.engine.vm.get_recent(self.id)?;
        self.snapshot(v)
    }

    /// `GET_RECENT`: a recently published version — guaranteed ≥ every
    /// version published before this call.
    pub fn recent_version(&self) -> Result<Version> {
        self.engine.vm.get_recent(self.id)
    }

    /// `GET_SIZE`: the size of published snapshot `v`.
    pub fn size(&self, v: Version) -> Result<u64> {
        self.engine.vm.get_size(self.id, v)
    }

    /// `BRANCH`: fork this blob at published version `v`. The new blob
    /// shares every snapshot up to and including `v` — no data or
    /// metadata is copied — and evolves independently afterwards.
    pub fn branch(&self, v: Version) -> Result<Blob> {
        let id = self.engine.vm.branch(self.id, v)?;
        Ok(Blob::new(Arc::clone(&self.engine), id))
    }

    /// Retire (garbage-collect) every version below `keep_from`; see
    /// [`crate::BlobSeer::retire_versions`].
    pub fn retire_versions(&self, keep_from: Version) -> Result<GcReport> {
        crate::gc::retire_versions(&self.engine, self.id, keep_from)
    }
}

impl std::fmt::Debug for Blob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blob").field("id", &self.id).finish()
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.engine, &other.engine)
    }
}

impl Eq for Blob {}

/// Anything that names a blob: a raw [`BlobId`], a [`Blob`] handle, or
/// a [`Snapshot`] — accepted by every flat [`crate::BlobSeer`] method,
/// so id-keyed code and handle-first code mix freely.
pub trait BlobRef {
    /// The named blob's id.
    fn blob_id(&self) -> BlobId;
}

impl BlobRef for BlobId {
    fn blob_id(&self) -> BlobId {
        *self
    }
}

impl BlobRef for &BlobId {
    fn blob_id(&self) -> BlobId {
        **self
    }
}

impl BlobRef for &Blob {
    fn blob_id(&self) -> BlobId {
        self.id
    }
}

impl BlobRef for &Snapshot {
    fn blob_id(&self) -> BlobId {
        Snapshot::blob_id(self)
    }
}
