//! The handle API: `Blob`, `Snapshot` (cached, VM-free reads, zero-copy
//! scatter), `PendingWrite` (pipelined updates), and their error paths.

use blobseer::{BlobError, BlobSeer, ByteRange, Bytes, Version};

const PSIZE: u64 = 4096;

fn store() -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(6)
        .metadata_providers(4)
        .io_threads(4)
        .build()
        .unwrap()
}

fn patterned(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect()
}

// ---------------------------------------------------------------- Blob

#[test]
fn blob_handle_roundtrip() {
    let s = store();
    let blob = s.create();
    let data = patterned(3 * PSIZE as usize + 100);
    let v1 = blob.append(&data).unwrap();
    blob.sync(v1).unwrap();
    assert_eq!(blob.size(v1).unwrap(), data.len() as u64);
    assert_eq!(blob.recent_version().unwrap(), v1);

    // Handles and ids interoperate: flat facade reads what the handle
    // wrote, and handles are constructible from ids.
    assert_eq!(s.read(&blob, v1, 0, 64).unwrap(), &data[..64]);
    assert_eq!(s.read(blob.id(), v1, 0, 64).unwrap(), &data[..64]);
    let same = s.blob(blob.id());
    assert_eq!(same, blob);
    assert_eq!(same.latest().unwrap().len(), data.len() as u64);

    // Branching through the handle.
    let fork = blob.branch(v1).unwrap();
    assert_ne!(fork.id(), blob.id());
    let vf = fork.append(b"tail").unwrap();
    fork.sync(vf).unwrap();
    assert_eq!(fork.latest().unwrap().len(), data.len() as u64 + 4);
    assert_eq!(blob.latest().unwrap().len(), data.len() as u64, "parent unaffected");
}

// ------------------------------------------------------------ Snapshot

#[test]
fn snapshot_reads_do_zero_vm_lookups_after_construction() {
    let s = store();
    let blob = s.create();
    let data = patterned(8 * PSIZE as usize);
    let v = blob.append(&data).unwrap();
    blob.sync(v).unwrap();

    let snap = blob.snapshot(v).unwrap();
    let before = s.stats().vm.read_views;
    let mut buf = vec![0u8; PSIZE as usize];
    for i in 0..16u64 {
        let offset = (i * 517) % (7 * PSIZE);
        assert_eq!(
            &snap.read(ByteRange::new(offset, PSIZE)).unwrap()[..],
            &data[offset as usize..(offset + PSIZE) as usize]
        );
        snap.read_into(offset, &mut buf).unwrap();
        snap.read_scatter(ByteRange::new(offset, PSIZE)).unwrap();
        snap.readv(&[ByteRange::new(0, 10), ByteRange::new(offset, 100)]).unwrap();
    }
    assert_eq!(
        s.stats().vm.read_views,
        before,
        "snapshot reads must not consult the version manager"
    );
    // The flat facade, by contrast, resolves the view on every call.
    s.read(&blob, v, 0, 10).unwrap();
    assert_eq!(s.stats().vm.read_views, before + 1);
}

#[test]
fn snapshot_error_paths() {
    let s = store();
    let blob = s.create();
    let v1 = blob.append(&patterned(100)).unwrap();

    // Snapshot of an unpublished (but assigned) version.
    let unpublished = Version(v1.raw() + 1);
    assert!(matches!(
        blob.snapshot(unpublished),
        Err(BlobError::VersionNotPublished { version, .. }) if version == unpublished
    ));
    blob.sync(v1).unwrap();

    // Reads past len() fail with the pinned version in the error.
    let snap = blob.snapshot(v1).unwrap();
    assert_eq!(snap.len(), 100);
    for result in [
        snap.read(ByteRange::new(0, 101)).map(|_| ()),
        snap.read_into(64, &mut [0u8; 64]),
        snap.read_scatter(ByteRange::new(100, 1)).map(|_| ()),
        snap.readv(&[ByteRange::new(0, 10), ByteRange::new(90, 11)]).map(|_| ()),
    ] {
        assert!(
            matches!(
                result,
                Err(BlobError::ReadBeyondEnd { version, snapshot_size: 100, .. }) if version == v1
            ),
            "{result:?}"
        );
    }

    // The empty snapshot reads nothing, successfully.
    let v0 = blob.snapshot(Version(0)).unwrap();
    assert!(v0.is_empty());
    assert_eq!(v0.read(ByteRange::new(0, 0)).unwrap().len(), 0);
    assert!(v0.read_scatter(ByteRange::new(0, 0)).unwrap().is_empty());

    // A snapshot of an unknown blob is a typed error.
    assert!(matches!(
        s.snapshot(blobseer::BlobId(9999), Version(0)),
        Err(BlobError::BlobNotFound(_))
    ));
}

#[test]
fn snapshot_is_immune_to_later_writes() {
    let s = store();
    let blob = s.create();
    let v1 = blob.append(&vec![b'a'; 2 * PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();
    let snap = blob.snapshot(v1).unwrap();

    let v2 = blob.write(&vec![b'X'; PSIZE as usize], 0).unwrap();
    blob.sync(v2).unwrap();
    assert!(snap.read(ByteRange::new(0, PSIZE)).unwrap().iter().all(|&b| b == b'a'));
    assert!(blob
        .snapshot(v2)
        .unwrap()
        .read(ByteRange::new(0, PSIZE))
        .unwrap()
        .iter()
        .all(|&b| b == b'X'));
}

// --------------------------------------------------------- ScatterRead

#[test]
fn scatter_read_windows_alias_stored_pages() {
    // The zero-copy acceptance check, mirroring the write-side test:
    // for a page-aligned range, every returned window must be
    // pointer-identical to the page as stored on the provider.
    let s = store();
    let blob = s.create();
    let payload = Bytes::from(patterned(4 * PSIZE as usize));
    let v = blob.append_bytes(payload.clone()).unwrap();
    blob.sync(v).unwrap();

    // With the zero-copy write path, stored pages alias `payload`, so
    // scatter windows must point straight back into it.
    let src = payload.as_ptr() as usize..payload.as_ptr() as usize + payload.len();
    let scatter = blob.snapshot(v).unwrap().read_scatter(ByteRange::new(0, 4 * PSIZE)).unwrap();
    assert_eq!(scatter.segments().len(), 4);
    assert_eq!(scatter.len(), 4 * PSIZE);
    for (i, seg) in scatter.segments().iter().enumerate() {
        assert_eq!(seg.offset, i as u64 * PSIZE);
        assert_eq!(seg.data.len(), PSIZE as usize);
        let ptr = seg.data.as_ptr() as usize;
        assert_eq!(
            ptr,
            src.start + i * PSIZE as usize,
            "segment {i} must alias the stored page (zero-copy read), not a copy"
        );
        assert!(src.contains(&ptr));
    }

    // Gathering a single-page read stays zero-copy too.
    let one = blob.snapshot(v).unwrap().read(ByteRange::new(PSIZE, PSIZE)).unwrap();
    assert_eq!(one.as_ptr() as usize, src.start + PSIZE as usize);

    // Unaligned scatter reads still tile the request exactly.
    let ragged =
        blob.snapshot(v).unwrap().read_scatter(ByteRange::new(PSIZE / 2, 2 * PSIZE + 100)).unwrap();
    let mut expected_offset = PSIZE / 2;
    let mut gathered = Vec::new();
    for seg in ragged.segments() {
        assert_eq!(seg.offset, expected_offset);
        expected_offset += seg.data.len() as u64;
        gathered.extend_from_slice(&seg.data);
    }
    assert_eq!(expected_offset, PSIZE / 2 + 2 * PSIZE + 100);
    assert_eq!(
        &gathered[..],
        &patterned(4 * PSIZE as usize)
            [(PSIZE / 2) as usize..(PSIZE / 2 + 2 * PSIZE + 100) as usize]
    );
}

#[test]
fn readv_matches_individual_reads_and_shares_planning() {
    let s = store();
    let blob = s.create();
    let data = patterned(16 * PSIZE as usize);
    let v = blob.append(&data).unwrap();
    blob.sync(v).unwrap();
    let snap = blob.snapshot(v).unwrap();

    let ranges = [
        ByteRange::new(0, 100),
        ByteRange::new(3 * PSIZE - 50, PSIZE),
        ByteRange::new(15 * PSIZE, PSIZE), // last page
        ByteRange::new(7 * PSIZE, 0),      // empty
        ByteRange::new(100, 300),          // overlaps the first
    ];
    let gets_before = s.stats().metadata.total_gets;
    let reads = snap.readv(&ranges).unwrap();
    let vectored_gets = s.stats().metadata.total_gets - gets_before;
    assert_eq!(reads.len(), ranges.len());
    for (range, read) in ranges.iter().zip(&reads) {
        assert_eq!(read.range(), *range);
        let expected = &data[range.offset as usize..range.end() as usize];
        assert_eq!(&read.clone().into_bytes()[..], expected, "{range:?}");
    }

    // The vectored plan walks the tree once: strictly fewer node
    // fetches than the same ranges planned one by one.
    let gets_before = s.stats().metadata.total_gets;
    for range in &ranges {
        snap.read_scatter(*range).unwrap();
    }
    let individual_gets = s.stats().metadata.total_gets - gets_before;
    assert!(
        vectored_gets < individual_gets,
        "one-pass planning must fetch fewer nodes ({vectored_gets} vs {individual_gets})"
    );
}

// -------------------------------------------------------- PendingWrite

#[test]
fn pipelined_writes_assign_versions_in_call_order() {
    let s = store();
    let blob = s.create();
    let mut pending = Vec::new();
    for i in 0..8u8 {
        let data = Bytes::from(vec![i; PSIZE as usize]);
        pending.push(blob.append_pipelined(data).unwrap());
    }
    for (i, p) in pending.iter().enumerate() {
        assert_eq!(p.version(), Version(i as u64 + 1), "call order fixes version order");
        assert_eq!(p.blob_id(), blob.id());
    }
    let last = pending.pop().unwrap();
    for p in pending {
        p.wait().unwrap();
    }
    let v = last.wait().unwrap();
    blob.sync(v).unwrap();
    let snap = blob.snapshot(v).unwrap();
    assert_eq!(snap.len(), 8 * PSIZE);
    for i in 0..8u64 {
        let page = snap.read(ByteRange::new(i * PSIZE, PSIZE)).unwrap();
        assert!(page.iter().all(|&b| b == i as u8), "append {i} landed in order");
    }
}

#[test]
fn pipelined_try_wait_polls() {
    let s = store();
    let blob = s.create();
    let p = blob.append_pipelined(Bytes::from(vec![1u8; PSIZE as usize])).unwrap();
    // Poll until done; must terminate well within the metadata timeout.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Some(result) = p.try_wait() {
            assert_eq!(result.unwrap(), Version(1));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "completion never surfaced");
        std::thread::yield_now();
    }
    assert!(p.is_done());
    assert_eq!(p.wait().unwrap(), Version(1));
}

#[test]
fn dropped_pending_write_still_publishes() {
    let s = store();
    let blob = s.create();
    // Drop the handle immediately: the completion stage already queued,
    // so the version must neither leak nor wedge a later sync.
    let v1 = blob.append_pipelined(Bytes::from(vec![7u8; PSIZE as usize])).unwrap().version();
    drop(blob.append_pipelined(Bytes::from(vec![8u8; PSIZE as usize])).unwrap());
    let p3 = blob.append_pipelined(Bytes::from(vec![9u8; PSIZE as usize])).unwrap();
    let v3 = p3.wait().unwrap();
    assert_eq!(v3, Version(3));
    blob.sync(v3).unwrap();
    assert_eq!(blob.recent_version().unwrap(), v3);
    let snap = blob.snapshot(Version(2)).unwrap();
    assert!(snap.read(ByteRange::new(PSIZE, PSIZE)).unwrap().iter().all(|&b| b == 8));
    let _ = v1;
}

#[test]
fn pipelined_unaligned_writes_merge_against_inflight_predecessors() {
    // Unaligned pipelined updates force boundary merges that may wait
    // on the (still in-flight) predecessor's metadata — the §4.2 wait
    // is on strictly lower versions, so this must converge.
    let s = store();
    let blob = s.create();
    let mut pending = Vec::new();
    for i in 0..6u8 {
        pending.push(blob.append_pipelined(Bytes::from(vec![b'a' + i; 1000])).unwrap());
    }
    let mut last = Version(0);
    for p in pending {
        last = p.wait().unwrap();
    }
    blob.sync(last).unwrap();
    let snap = blob.latest().unwrap();
    assert_eq!(snap.len(), 6000);
    let all = snap.read(ByteRange::new(0, 6000)).unwrap();
    for i in 0..6usize {
        assert!(all[i * 1000..(i + 1) * 1000].iter().all(|&b| b == b'a' + i as u8));
    }
}

#[test]
fn pipelined_and_blocking_writes_interleave() {
    let s = store();
    let blob = s.create();
    let p1 = blob.append_pipelined(Bytes::from(vec![1u8; PSIZE as usize])).unwrap();
    let v2 = blob.append(&vec![2u8; PSIZE as usize]).unwrap();
    let p3 = blob.write_pipelined(Bytes::from(vec![3u8; PSIZE as usize]), 0).unwrap();
    assert_eq!(p1.version(), Version(1));
    assert_eq!(v2, Version(2));
    assert_eq!(p3.version(), Version(3));
    let v3 = p3.wait().unwrap();
    p1.wait().unwrap();
    blob.sync(v3).unwrap();
    let snap = blob.snapshot(v3).unwrap();
    assert!(snap.read(ByteRange::new(0, PSIZE)).unwrap().iter().all(|&b| b == 3));
    assert!(snap.read(ByteRange::new(PSIZE, PSIZE)).unwrap().iter().all(|&b| b == 2));
}

#[test]
fn pipelined_rejects_bad_updates_synchronously() {
    let s = store();
    let blob = s.create();
    assert!(matches!(blob.append_pipelined(Bytes::new()), Err(BlobError::EmptyUpdate)));
    assert!(matches!(
        blob.write_pipelined(Bytes::from(vec![1u8; 10]), 999),
        Err(BlobError::WriteBeyondEnd { .. })
    ));
    // The failures above must not have consumed a version.
    let p = blob.append_pipelined(Bytes::from(vec![1u8; 10])).unwrap();
    assert_eq!(p.wait().unwrap(), Version(1));
}

#[test]
fn retired_snapshot_read_surfaces_typed_error() {
    // A live Snapshot does not pin its version against GC; once the
    // version is retired, reads must surface VersionRetired (after the
    // metadata wait — deleted nodes look like in-flight writers until
    // the error path re-checks the VM).
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .metadata_wait(std::time::Duration::from_millis(100))
        .build()
        .unwrap();
    let blob = s.create();
    let v1 = blob.append(&patterned(2 * PSIZE as usize)).unwrap();
    // v2 fully overwrites v1, so none of v1's pages or tree nodes are
    // shared forward — GC will actually delete them.
    let v2 = blob.write(&patterned(2 * PSIZE as usize), 0).unwrap();
    blob.sync(v2).unwrap();
    let snap = blob.snapshot(v1).unwrap();
    blob.retire_versions(v2).unwrap();

    for result in [
        snap.read(ByteRange::new(0, PSIZE)).map(|_| ()),
        snap.read_scatter(ByteRange::new(0, PSIZE)).map(|_| ()),
        snap.readv(&[ByteRange::new(0, PSIZE)]).map(|_| ()),
        snap.read_into(0, &mut [0u8; 16]),
    ] {
        assert!(
            matches!(result, Err(BlobError::VersionRetired { version, .. }) if version == v1),
            "{result:?}"
        );
    }
    // The retained snapshot still reads fine through its own handle.
    let keep = blob.snapshot(v2).unwrap();
    keep.read(ByteRange::new(0, keep.len())).unwrap();
}

#[test]
fn readv_shares_fetches_of_identical_page_windows() {
    // ROADMAP item: overlapping vectored ranges hitting the same page
    // window must share one provider fetch. Pointer identity across
    // the returned segments proves both requests alias the single
    // fetched buffer.
    let s = store();
    let blob = s.create();
    let v = blob.append(&patterned(4 * PSIZE as usize)).unwrap();
    blob.sync(v).unwrap();
    let snap = blob.snapshot(v).unwrap();

    // Both requests cover page 1 in full; the second also needs page 2.
    let fetches_before: u64 = s.stats().providers.iter().map(|p| p.reads).sum();
    let reads =
        snap.readv(&[ByteRange::new(PSIZE, PSIZE), ByteRange::new(PSIZE, 2 * PSIZE)]).unwrap();
    let fetches_after: u64 = s.stats().providers.iter().map(|p| p.reads).sum();
    assert_eq!(fetches_after - fetches_before, 2, "page 1 read once, page 2 once");

    let a = &reads[0].segments()[0].data;
    let b = &reads[1].segments()[0].data;
    assert_eq!(a.as_ptr(), b.as_ptr(), "identical windows must alias one fetch");
    assert_eq!(a, b);
    // Content is still exactly right for both requests.
    let data = patterned(4 * PSIZE as usize);
    assert_eq!(&reads[0].clone().into_bytes()[..], &data[PSIZE as usize..2 * PSIZE as usize]);
    assert_eq!(&reads[1].clone().into_bytes()[..], &data[PSIZE as usize..3 * PSIZE as usize]);
}

#[test]
fn readv_dedups_only_identical_windows() {
    // Different sub-ranges of the same page stay separate fetches (the
    // windows differ), and both come back correct.
    let s = store();
    let blob = s.create();
    let v = blob.append(&patterned(2 * PSIZE as usize)).unwrap();
    blob.sync(v).unwrap();
    let snap = blob.snapshot(v).unwrap();
    let data = patterned(2 * PSIZE as usize);
    let reads = snap
        .readv(&[ByteRange::new(8, 100), ByteRange::new(16, 100), ByteRange::new(8, 100)])
        .unwrap();
    assert_eq!(&reads[0].clone().into_bytes()[..], &data[8..108]);
    assert_eq!(&reads[1].clone().into_bytes()[..], &data[16..116]);
    // Identical requests 0 and 2 alias one fetch.
    assert_eq!(reads[0].segments()[0].data.as_ptr(), reads[2].segments()[0].data.as_ptr());
}

// ------------------------------------------- Lock-free hot read path

#[test]
fn hot_reads_are_served_lock_free() {
    // The acceptance check for wait-free snapshot publication: the hot
    // read paths must be *asserted* lock-free via the VmStats counter,
    // not just claimed by a bench. Every latest()/recent_version()/
    // snapshot(latest) must be served from the seqlock cell.
    let s = store();
    let blob = s.create();
    let v = blob.append(&patterned(PSIZE as usize)).unwrap();
    blob.sync(v).unwrap();

    let before = s.stats().vm;
    const OPS: u64 = 32;
    for _ in 0..OPS {
        let snap = blob.latest().unwrap();
        assert_eq!(snap.version(), v);
        assert_eq!(snap.len(), PSIZE);
    }
    let after = s.stats().vm;
    assert_eq!(
        after.lockfree_reads - before.lockfree_reads,
        OPS,
        "every latest() must be served from the seqlock cell, not the blob mutex"
    );
    assert_eq!(after.read_views - before.read_views, OPS, "latest() is one view resolution");

    // recent_version is a hot read too (and not a view resolution).
    let before = s.stats().vm;
    blob.recent_version().unwrap();
    let after = s.stats().vm;
    assert_eq!(after.lockfree_reads - before.lockfree_reads, 1);
    assert_eq!(after.read_views, before.read_views);

    // A version-pinned snapshot of the *latest* version rides the cell;
    // a pinned older version takes the (still correct) locked path.
    let v2 = blob.append(&patterned(PSIZE as usize)).unwrap();
    blob.sync(v2).unwrap();
    let before = s.stats().vm;
    blob.snapshot(v2).unwrap();
    let mid = s.stats().vm;
    assert_eq!(mid.lockfree_reads - before.lockfree_reads, 1);
    let old = blob.snapshot(v).unwrap();
    let after = s.stats().vm;
    assert_eq!(after.lockfree_reads, mid.lockfree_reads, "old versions resolve under the lock");
    assert_eq!(old.len(), PSIZE);
}

#[test]
fn disabled_lockfree_publication_keeps_the_locked_baseline() {
    // The A/B knob: with lockfree_publication(false) every read takes
    // the blob mutex and the counter stays at zero — this is the
    // baseline side of the hot_blob_snapshot bench.
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .lockfree_publication(false)
        .build()
        .unwrap();
    let blob = s.create();
    let v = blob.append(&patterned(PSIZE as usize)).unwrap();
    blob.sync(v).unwrap();
    for _ in 0..8 {
        let snap = blob.latest().unwrap();
        assert_eq!(snap.version(), v);
        blob.recent_version().unwrap();
        blob.snapshot(v).unwrap();
    }
    assert_eq!(s.stats().vm.lockfree_reads, 0, "locked baseline must never touch the cell");
}

#[test]
fn facade_wrappers_survive_concurrent_abort_retire_churn() {
    // ISSUE 10 satellite: latest()/snapshot()/branch under concurrent
    // abort + retire churn return a published version or a typed error
    // — never a panic, and never a stale root (size must always match
    // the returned version: appends are PSIZE each, and aborted holes
    // record the same size via their zero-extending repair).
    use std::sync::atomic::{AtomicBool, Ordering};
    let s = store();
    let blob = s.create();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Mutator: appends, with periodic crash-abort holes and
        // retire attempts.
        scope.spawn(|| {
            for i in 0..30u32 {
                if i % 5 == 3 {
                    let dead = blob
                        .crash_append(
                            Bytes::from(vec![0u8; PSIZE as usize]),
                            blobseer::CrashPoint::AfterPrepare,
                        )
                        .unwrap();
                    blob.abort(dead).unwrap();
                } else {
                    let v = blob.append(&patterned(PSIZE as usize)).unwrap();
                    blob.sync(v).unwrap();
                }
                if i % 7 == 6 {
                    match blob.retire_versions(blob.recent_version().unwrap()) {
                        Ok(_) => {}
                        // Branch pins and in-flight updates conflict,
                        // typed; a hole at the head can make the
                        // readable frontier unpublishable to retire to.
                        Err(BlobError::GcConflict(_))
                        | Err(BlobError::VersionNotPublished { .. }) => {}
                        Err(e) => panic!("retire: unexpected {e:?}"),
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Brancher: forks at whatever is recent; races with abort and
        // retire must stay typed.
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let v = blob.recent_version().unwrap();
                match blob.branch(v) {
                    Ok(fork) => {
                        let snap = fork.latest().unwrap();
                        assert_eq!(snap.len(), snap.version().raw() * PSIZE);
                    }
                    Err(BlobError::VersionRetired { .. })
                    | Err(BlobError::VersionAborted { .. })
                    | Err(BlobError::VersionNotPublished { .. }) => {}
                    Err(e) => panic!("branch: unexpected {e:?}"),
                }
                std::thread::yield_now();
            }
        });

        // Readers: open-latest storm against the churn.
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let snap = blob.latest().unwrap();
                    let v = snap.version();
                    // Size always matches the returned version — a
                    // torn (version, size) pair would break this.
                    assert_eq!(
                        snap.len(),
                        v.raw() * PSIZE,
                        "stale or torn (version, size) from latest()"
                    );
                    if !snap.is_empty() {
                        match snap.read(ByteRange::new(snap.len() - 1, 1)) {
                            Ok(_) => {}
                            // GC may sweep the version under a live
                            // handle; must surface typed, not panic.
                            Err(BlobError::VersionRetired { .. }) => {}
                            Err(e) => panic!("read: unexpected {e:?}"),
                        }
                    }
                    match blob.snapshot(v) {
                        Ok(again) => assert_eq!(again.len(), snap.len()),
                        Err(BlobError::VersionRetired { .. }) => {}
                        Err(e) => panic!("snapshot: unexpected {e:?}"),
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    // The storm above must actually have exercised the seqlock path.
    assert!(s.stats().vm.lockfree_reads > 0, "churn readers never hit the hot path");
}
