//! The orphan scrubber end to end — the PR's acceptance scenario: kill
//! writers mid-update at every `CrashPoint`, let leases expire and
//! repair run, then `scrub_orphans` reclaims every leaked page
//! (provider storage returns to exactly the live-set size) while a
//! concurrent writer's in-flight, not-yet-referenced pages survive.

use blobseer::{BlobError, BlobSeer, ByteRange, Bytes, CrashPoint, Version};

const PSIZE: u64 = 1024;

fn store(lease_ttl: u64) -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .lease_ttl_ticks(lease_ttl)
        .build()
        .unwrap()
}

fn filled(len: u64, fill: u8) -> Bytes {
    Bytes::from(vec![fill; len as usize])
}

/// Crash a writer, recover through the production path (lease expiry +
/// sweep → abort + repair), and return the aborted version.
fn crash_and_repair(
    s: &BlobSeer,
    blob: &blobseer::Blob,
    data: Bytes,
    point: CrashPoint,
) -> Version {
    let v = blob.crash_append(data, point).unwrap();
    s.advance_lease_clock(s.config().lease_ttl_ticks + 1);
    let report = s.sweep_expired_leases();
    assert!(report.aborted.contains(&(blob.id(), v)), "sweep must abort {v}");
    v
}

#[test]
fn scrub_reclaims_every_crash_point_leak_exactly() {
    let s = store(50);
    let blob = s.create();

    // Healthy ingest: three 2-page appends.
    let mut last = Version(0);
    for fill in 1..=3u8 {
        last = blob.append(&vec![fill; 2 * PSIZE as usize]).unwrap();
    }
    blob.sync(last).unwrap();
    let live_bytes_before_crashes = s.stats().physical_bytes;
    assert_eq!(live_bytes_before_crashes, 6 * PSIZE);

    // Kill four writers, one per crash point, recovering in between.
    // Leak accounting per point (2-page aligned appends, so
    // AfterBoundaryPages stores the same state as AfterPrepare):
    //   AfterPrepare / AfterBoundaryPages / AfterPartialMetadata —
    //     the writer's 2 pages never get leaves; repair's fresh pages
    //     take their place in the tree → 2 leaked pages each;
    //   BeforeNotify — the writer's leaves are durable and win the
    //     `put_new` race, so the *repair's* 2 pages are the leak.
    for (i, point) in [
        CrashPoint::AfterPrepare,
        CrashPoint::AfterBoundaryPages,
        CrashPoint::AfterPartialMetadata,
        CrashPoint::BeforeNotify,
    ]
    .into_iter()
    .enumerate()
    {
        crash_and_repair(&s, &blob, filled(2 * PSIZE, 0xB0 + i as u8), point);
    }
    // A post-hole survivor proves the blob stayed healthy.
    let survivor = blob.append(&vec![9u8; 2 * PSIZE as usize]).unwrap();
    blob.sync(survivor).unwrap();

    // 4 crashed writers + 4 repairs stored 2 pages each; half of those
    // 16 pages are referenced by no leaf.
    let leaked = 8 * PSIZE;
    let live = live_bytes_before_crashes + 8 * PSIZE + 2 * PSIZE; // repairs/winners + survivor
    assert_eq!(s.stats().physical_bytes, live + leaked);

    // Snapshot every published version's bytes before the scrub.
    let before: Vec<(Version, Bytes)> = (1..=survivor.raw())
        .map(Version)
        .filter(|&v| !matches!(blob.snapshot(v), Err(BlobError::VersionAborted { .. })))
        .map(|v| {
            let snap = blob.snapshot(v).unwrap();
            (v, snap.read(ByteRange::new(0, snap.len())).unwrap())
        })
        .collect();
    assert_eq!(before.len(), 4, "v1..v3 + survivor");

    // The tentpole moment.
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 8);
    assert_eq!(report.bytes_reclaimed, leaked);
    assert_eq!(report.providers_scrubbed, 4);
    assert_eq!(report.providers_skipped, 0);
    assert_eq!(report.pages_exempt, 0, "deployment was quiescent");

    // Storage is back to exactly the live-set size...
    assert_eq!(s.stats().physical_bytes, live);
    // ...every published snapshot is byte-identical...
    for (v, bytes) in &before {
        let snap = blob.snapshot(*v).unwrap();
        assert_eq!(snap.read(ByteRange::new(0, snap.len())).unwrap(), *bytes, "{v} changed");
    }
    // ...and a second pass proves the fixpoint: everything scanned is
    // marked live, nothing reclaimed.
    let again = s.scrub_orphans().unwrap();
    assert_eq!(again.pages_reclaimed, 0);
    assert_eq!(again.pages_scanned as usize, again.pages_marked);
}

#[test]
fn concurrent_writers_inflight_pages_survive_the_scrub() {
    let s = store(1_000);
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();

    // v2's writer dies after storing its interior page (1.5-page
    // unaligned append: interior page stored, tail boundary never
    // written, no metadata at all). Its lease is still live.
    let dead = blob.crash_append(filled(PSIZE + PSIZE / 2, 2), CrashPoint::AfterPrepare).unwrap();

    // v3 pipelines in behind it. Its interior page is stored by the
    // caller thread right here; its completion stage then blocks on
    // v2's missing boundary metadata — an in-flight writer with a
    // stored page no leaf references yet.
    let p3 = blob.append_pipelined(filled(PSIZE + PSIZE / 2, 3)).unwrap();
    assert!(!p3.is_done());

    // Scrub *now*, mid-flight. v2's page is judged (writer dead, no
    // leaf → reclaimed); v3's page is exempted by the epoch cut.
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 1, "the dead writer's interior page");
    assert_eq!(report.bytes_reclaimed, PSIZE);
    assert!(report.pages_exempt >= 1, "the live writer's in-flight page");

    // Recovery: abort the dead version explicitly (advancing the clock
    // past the TTL would expire the *blocked* v3's lease too — its
    // stage cannot renew while parked on v2's metadata). The repair
    // path is identical; v3 wakes on the repair's `put_new`.
    blob.abort(dead).unwrap();
    assert_eq!(p3.wait().unwrap(), Version(3));
    blob.sync(Version(3)).unwrap();
    assert!(matches!(blob.snapshot(dead), Err(BlobError::VersionAborted { .. })));

    // v3's content survived the scrub byte for byte: v1's page, the
    // hole's zeros, then v3's own 1.5 pages.
    let snap = blob.snapshot(Version(3)).unwrap();
    assert_eq!(snap.len(), 4 * PSIZE);
    let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
    assert!(bytes[..PSIZE as usize].iter().all(|&b| b == 1));
    assert!(bytes[PSIZE as usize..(2 * PSIZE + PSIZE / 2) as usize].iter().all(|&b| b == 0));
    assert!(bytes[(2 * PSIZE + PSIZE / 2) as usize..].iter().all(|&b| b == 3));

    // Our explicit abort may have raced the background sweeper's retry
    // of the same version; the race's loser leaks one repair pass —
    // the documented `put_new`-race leak — which a later scrub
    // reclaims once that repair retires its pin. Drain to quiescence
    // (bounded; the stray repair finishes promptly), then assert the
    // fixpoint.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let r = s.scrub_orphans().unwrap();
        if r.pages_reclaimed == 0 && r.pages_exempt == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "scrub never reached quiescence");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let again = s.scrub_orphans().unwrap();
    assert_eq!(again.pages_reclaimed, 0);
    assert_eq!(again.pages_scanned as usize, again.pages_marked);
}

#[test]
fn scrub_reclaims_every_replica_of_an_orphan() {
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(1)
        .replication(2)
        .lease_ttl_ticks(10)
        .build()
        .unwrap();
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();
    crash_and_repair(&s, &blob, filled(PSIZE, 2), CrashPoint::AfterPrepare);

    // Leak = the dead writer's page on its primary *and* its replica;
    // both copies carry the same pid and both are reclaimed.
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 2);
    assert_eq!(report.bytes_reclaimed, 2 * PSIZE);
    // Live set: v1's page + the repair's page, 2 copies each.
    assert_eq!(s.stats().physical_bytes, 4 * PSIZE);
    assert_eq!(&blob.snapshot(v1).unwrap().read(ByteRange::new(0, PSIZE)).unwrap()[..4], [1u8; 4]);
}

#[test]
fn offline_providers_are_skipped_and_reswept_after_recovery() {
    let s = store(10);
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; 4 * PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();
    // Round-robin over 4 providers: the dead writer's 4 pages land one
    // per provider.
    crash_and_repair(&s, &blob, filled(4 * PSIZE, 2), CrashPoint::AfterPrepare);

    s.fail_provider(blobseer::ProviderId(0)).unwrap();
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.providers_skipped, 1);
    assert_eq!(report.providers_scrubbed, 3);
    assert_eq!(report.pages_reclaimed, 3, "the offline provider keeps its orphan");

    s.recover_provider(blobseer::ProviderId(0)).unwrap();
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.providers_skipped, 0);
    assert_eq!(report.pages_reclaimed, 1, "the recovered provider's orphan goes now");
    assert_eq!(s.stats().physical_bytes, 8 * PSIZE, "v1 + repair");
}

#[test]
fn scrub_composes_with_retire_versions() {
    let s = store(10);
    let blob = s.create();
    for fill in 1..=4u8 {
        let v = blob.write(&vec![fill; 2 * PSIZE as usize], 0).unwrap();
        blob.sync(v).unwrap();
    }
    crash_and_repair(&s, &blob, filled(2 * PSIZE, 9), CrashPoint::AfterPrepare);

    // GC retires old overwritten history, the scrubber takes the leak;
    // neither touches the other's reclaim.
    let gc = blob.retire_versions(Version(4)).unwrap();
    assert!(gc.pages_removed > 0, "overwritten history reclaimed");
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 2, "the crashed writer's pages");

    // v4 still reads, and the deployment is at its live fixpoint.
    let snap = blob.snapshot(Version(4)).unwrap();
    assert!(snap.read(ByteRange::new(0, 2 * PSIZE)).unwrap().iter().all(|&b| b == 4));
    let again = s.scrub_orphans().unwrap();
    assert_eq!(again.pages_reclaimed, 0);
    assert_eq!(again.pages_scanned as usize, again.pages_marked);
}

#[test]
fn branches_pin_shared_history_through_a_scrub() {
    let s = store(10);
    let parent = s.create();
    let v1 = parent.append(&vec![1u8; 2 * PSIZE as usize]).unwrap();
    parent.sync(v1).unwrap();
    let fork = parent.branch(v1).unwrap();
    let f2 = fork.append(&vec![2u8; PSIZE as usize]).unwrap();
    fork.sync(f2).unwrap();
    crash_and_repair(&s, &parent, filled(PSIZE, 3), CrashPoint::AfterPrepare);

    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 1, "only the dead writer's page");
    // Both lineages still read their shared and private bytes.
    assert!(parent
        .snapshot(v1)
        .unwrap()
        .read(ByteRange::new(0, 2 * PSIZE))
        .unwrap()
        .iter()
        .all(|&b| b == 1));
    let fsnap = fork.snapshot(f2).unwrap();
    let bytes = fsnap.read(ByteRange::new(0, 3 * PSIZE)).unwrap();
    assert!(bytes[..2 * PSIZE as usize].iter().all(|&b| b == 1));
    assert!(bytes[2 * PSIZE as usize..].iter().all(|&b| b == 2));
}
