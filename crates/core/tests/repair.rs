//! Provider fault tolerance end-to-end: write-path failover, corrupt
//! copies treated as misses, the replica repairer, and the sliced-wait
//! self-help hook. Deterministic companions to the randomized
//! `tests/prop_provider_crash.rs`.

use std::sync::Arc;
use std::time::Duration;

use blobseer::{
    Blob, BlobError, BlobSeer, ByteRange, Bytes, CrashPoint, FaultPlan, MemoryPageStore, PageStore,
};

const PSIZE: u64 = 64;

/// A deployment whose every data provider sits behind a caller-held
/// [`FaultPlan`].
fn faulty_store(providers: usize, replication: usize) -> (BlobSeer, Vec<Arc<FaultPlan>>) {
    let plans: Vec<Arc<FaultPlan>> = (0..providers)
        .map(|i| Arc::new(FaultPlan::with_seed(Arc::new(MemoryPageStore::new()), 0x70 + i as u64)))
        .collect();
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(1)
        .replication(replication)
        .page_stores(plans.iter().map(|p| Arc::clone(p) as Arc<dyn PageStore>).collect())
        .build()
        .unwrap();
    (store, plans)
}

fn read_all(blob: &Blob) -> Vec<u8> {
    let snap = blob.latest().unwrap();
    snap.read(ByteRange::new(0, snap.len())).unwrap().to_vec()
}

#[test]
fn offline_provider_fails_over_and_counts() {
    let (store, plans) = faulty_store(4, 2);
    let blob = store.create();

    // Kill one provider, then write enough pages that round-robin
    // placement is guaranteed to pick it as primary or replica.
    plans[1].set_offline(true);
    let data: Vec<u8> = (0..8 * PSIZE).map(|i| i as u8).collect();
    let v = blob.append(&data).unwrap(); // (a) the update must succeed
    blob.sync(v).unwrap();

    let snap = store.stats_snapshot();
    assert!(snap.failovers_total > 0, "a dead chain member must force failovers");
    // Failover *fills* the copy count from fallbacks: with 4 providers
    // and one dead there is always a live fallback, so no store
    // publishes under-replicated.
    assert_eq!(snap.under_replicated_stores, 0);
    assert_eq!(read_all(&blob), data);

    // With fewer live providers than the replication factor, failover
    // runs out of fallbacks: the update still succeeds (one copy
    // landed) and the shortfall is counted.
    plans[2].set_offline(true);
    plans[3].set_offline(true);
    let v = blob.append(&data).unwrap();
    blob.sync(v).unwrap();
    assert!(store.stats_snapshot().under_replicated_stores > 0);
    // Once the deployment recovers, nothing was lost.
    for plan in &plans {
        plan.set_offline(false);
    }
    assert_eq!(read_all(&blob), [data.clone(), data.clone()].concat());
}

#[test]
fn no_live_provider_fails_the_update_typed() {
    let (store, plans) = faulty_store(2, 2);
    let blob = store.create();
    for plan in &plans {
        plan.set_offline(true);
    }
    let err = blob.append(&[1u8; 64]).unwrap_err();
    assert!(matches!(err, BlobError::Storage(_)), "got {err:?}");
}

#[test]
fn repair_refills_chains_and_trims_strays_after_failover() {
    let (store, plans) = faulty_store(4, 2);
    let blob = store.create();

    plans[0].set_offline(true);
    let data: Vec<u8> = (0..8 * PSIZE).map(|i| (i * 7) as u8).collect();
    let v = blob.append(&data).unwrap();
    blob.sync(v).unwrap();
    let failovers = store.stats_snapshot().failovers_total;
    assert!(failovers > 0);

    // Recover and repair: every failed-over copy moves back onto its
    // chain slot, and the redundant fallback copy is trimmed.
    plans[0].set_offline(false);
    let report = store.repair_replicas().unwrap();
    assert_eq!(report.providers_skipped, 0);
    assert_eq!(report.pages_unrepairable, 0);
    assert_eq!(report.copies_repaired, failovers, "one refill per failover");
    assert_eq!(report.strays_trimmed, failovers, "one trim per failover");
    assert!(report.bytes_copied > 0);

    // Latency timers recorded (success-only rule): both repair phases.
    let snap = store.stats_snapshot();
    assert_eq!(snap.repair_mark.count, 1);
    assert_eq!(snap.repair_copy.count, 1);

    // Full replication restored: ANY single provider may now die
    // without losing a byte.
    for plan in &plans {
        plan.set_offline(true);
        assert_eq!(read_all(&blob), data);
        plan.set_offline(false);
    }

    // A healthy deployment repairs to a no-op.
    let second = store.repair_replicas().unwrap();
    assert_eq!(second.copies_repaired, 0);
    assert_eq!(second.strays_trimmed, 0);
    assert_eq!(second.copies_failed, 0);
    assert!(second.copies_verified >= 2, "chain copies re-verified");
}

#[test]
fn corrupt_copy_reads_as_miss_and_repair_replaces_it() {
    let (store, plans) = faulty_store(3, 2);
    let blob = store.create();
    let data: Vec<u8> = (0..2 * PSIZE).map(|i| (i * 3) as u8).collect();
    let v = blob.append(&data).unwrap();
    blob.sync(v).unwrap();

    // Rot every copy on one provider at rest.
    let mut flipped = 0;
    for (pid, _) in plans[0].scan().unwrap() {
        assert!(plans[0].corrupt_stored_page(pid).unwrap());
        flipped += 1;
    }
    assert!(flipped > 0, "round-robin must have placed copies on prov#0");

    // Reads fall back to a verifying replica — bytes are pristine —
    // and the engine counts each corrupt copy it stepped over.
    assert_eq!(read_all(&blob), data);
    let snap = store.stats_snapshot();
    assert!(snap.corrupt_pages_detected > 0);

    // Repair replaces exactly the rotted copies (the one legitimate
    // overwrite), and a follow-up pass is clean.
    let report = store.repair_replicas().unwrap();
    assert_eq!(report.copies_repaired, flipped);
    assert_eq!(report.pages_unrepairable, 0);
    let second = store.repair_replicas().unwrap();
    assert_eq!(second.copies_repaired, 0);

    // Per-provider split: the rotted provider detected the corruption
    // and received the repairs.
    let stats = store.stats();
    let p0 = stats.providers.iter().find(|p| p.id == blobseer::ProviderId(0)).unwrap();
    assert!(p0.corrupt_detected >= flipped);
    assert_eq!(p0.pages_repaired, flipped);
}

#[test]
fn page_corrupt_surfaces_only_when_every_copy_rots() {
    let (store, plans) = faulty_store(2, 2);
    let blob = store.create();
    let v = blob.append(&vec![9u8; PSIZE as usize]).unwrap();
    blob.sync(v).unwrap();

    // Both copies of the single page rot: nothing verifies anywhere.
    for plan in &plans {
        for (pid, _) in plan.scan().unwrap() {
            plan.corrupt_stored_page(pid).unwrap();
        }
    }
    let snap = blob.latest().unwrap();
    let err = snap.read(ByteRange::new(0, PSIZE)).unwrap_err();
    assert!(matches!(err, BlobError::PageCorrupt { .. }), "got {err:?}");

    // The repairer has no verified source either: it reports the page
    // and touches nothing.
    let report = store.repair_replicas().unwrap();
    assert_eq!(report.pages_unrepairable, 1);
    assert_eq!(report.copies_repaired, 0);
}

#[test]
fn new_metrics_appear_in_the_prometheus_exposition() {
    let (store, plans) = faulty_store(3, 2);
    let blob = store.create();
    plans[2].set_offline(true);
    let v = blob.append(&vec![5u8; 4 * PSIZE as usize]).unwrap();
    blob.sync(v).unwrap();
    plans[2].set_offline(false);
    store.repair_replicas().unwrap();

    let text = store.metrics_text();
    for metric in [
        "blobseer_failovers_total",
        "blobseer_corrupt_pages_detected_total",
        "blobseer_under_replicated_stores_total",
        "blobseer_repair_mark_latency_seconds",
        "blobseer_repair_copy_latency_seconds",
    ] {
        assert!(text.contains(metric), "{metric} missing from exposition:\n{text}");
    }
}

#[test]
fn sliced_wait_self_help_recovers_a_blocked_writer() {
    // A writer dies wedged; a second writer blocks on the dead
    // version's never-coming metadata. The lease expires only *after*
    // the second writer is already parked — the upfront self-help
    // check missed it — so recovery rides entirely on the sliced-wait
    // hook: wait a bit, sweep, retry.
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(2)
        .metadata_providers(2)
        .io_threads(1)
        .pipeline_threads(1)
        .lease_ttl_ticks(5)
        .metadata_wait(Duration::from_secs(30))
        .metadata_wait_slice(Duration::from_millis(10))
        .build()
        .unwrap();
    let blob = store.create();
    // Unaligned sizes force v2 to boundary-merge bytes of snapshot v1.
    let v1 = blob.crash_append(Bytes::from(vec![1u8; 10]), CrashPoint::AfterPrepare).unwrap();

    let started = std::time::Instant::now();
    let writer = {
        let blob = blob.clone();
        std::thread::spawn(move || blob.append(&[2u8; 10]))
    };
    // Let the writer park, then lapse the dead writer's lease.
    std::thread::sleep(Duration::from_millis(100));
    store.advance_lease_clock(6);

    let v2 = writer.join().unwrap().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "writer must recover via self-help slices, not the full timeout"
    );
    assert!(matches!(blob.snapshot(v1), Err(BlobError::VersionAborted { .. })));
    blob.sync(v2).unwrap();
    // The hole reads as zeros (v1 stored no leaves), the survivor's
    // bytes follow.
    let snap = blob.snapshot(v2).unwrap();
    let bytes = snap.read(ByteRange::new(0, 20)).unwrap();
    assert_eq!(&bytes[..10], &[0u8; 10]);
    assert_eq!(&bytes[10..], &[2u8; 10]);
}
