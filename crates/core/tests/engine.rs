//! End-to-end tests of the public BlobSeer API against a flat-buffer
//! model: every published snapshot must be byte-identical to replaying
//! the same updates, in version order, on a `Vec<u8>`.

use std::collections::BTreeMap;
use std::sync::Arc;

use blobseer::{AllocationStrategy, BlobError, BlobSeer, ConcurrencyMode, Version};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PSIZE: u64 = 64;

fn store() -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(7)
        .metadata_providers(5)
        .io_threads(4)
        .build()
        .unwrap()
}

/// A reference model of one blob: snapshots as flat byte vectors.
#[derive(Default)]
struct Model {
    snapshots: BTreeMap<u64, Vec<u8>>,
}

impl Model {
    fn new() -> Self {
        let mut m = Model::default();
        m.snapshots.insert(0, Vec::new());
        m
    }

    fn apply_write(&mut self, v: Version, offset: u64, data: &[u8]) {
        let prev = self.snapshots[&(v.raw() - 1)].clone();
        let mut next = prev;
        let end = offset as usize + data.len();
        if next.len() < end {
            next.resize(end, 0);
        }
        next[offset as usize..end].copy_from_slice(data);
        self.snapshots.insert(v.raw(), next);
    }

    fn apply_append(&mut self, v: Version, data: &[u8]) {
        let offset = self.snapshots[&(v.raw() - 1)].len() as u64;
        self.apply_write(v, offset, data);
    }

    fn check_all(&self, store: &BlobSeer, blob: blobseer::BlobId) {
        for (&v, expected) in &self.snapshots {
            let v = Version(v);
            let size = store.get_size(blob, v).unwrap();
            assert_eq!(size, expected.len() as u64, "{v} size");
            let got = store.read(blob, v, 0, size).unwrap();
            assert_eq!(&got, expected, "{v} content");
        }
    }
}

fn patterned(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
}

#[test]
fn empty_blob_semantics() {
    let s = store();
    let b = s.create().id();
    assert_eq!(s.get_recent(b).unwrap(), Version(0));
    assert_eq!(s.get_size(b, Version(0)).unwrap(), 0);
    assert_eq!(s.read(b, Version(0), 0, 0).unwrap(), Vec::<u8>::new());
    assert!(matches!(s.read(b, Version(0), 0, 1), Err(BlobError::ReadBeyondEnd { .. })));
}

#[test]
fn aligned_write_read_roundtrip() {
    let s = store();
    let b = s.create().id();
    let data = patterned(PSIZE as usize * 4, 1);
    let v1 = s.append(b, &data).unwrap();
    s.sync(b, v1).unwrap();
    assert_eq!(s.read(b, v1, 0, data.len() as u64).unwrap(), data);
    // Sub-range reads, aligned and not.
    assert_eq!(s.read(b, v1, 64, 64).unwrap(), data[64..128]);
    assert_eq!(s.read(b, v1, 10, 100).unwrap(), data[10..110]);
    assert_eq!(s.read(b, v1, 255, 1).unwrap(), data[255..256]);
}

#[test]
fn versions_are_immutable_snapshots() {
    let s = store();
    let b = s.create().id();
    let mut model = Model::new();
    let d1 = patterned(PSIZE as usize * 4, 1);
    let v1 = s.append(b, &d1).unwrap();
    model.apply_append(v1, &d1);
    let d2 = patterned(PSIZE as usize * 2, 2);
    let v2 = s.write(b, &d2, PSIZE).unwrap();
    model.apply_write(v2, PSIZE, &d2);
    let d3 = patterned(PSIZE as usize, 3);
    let v3 = s.append(b, &d3).unwrap();
    model.apply_append(v3, &d3);
    s.sync(b, v3).unwrap();
    model.check_all(&s, b);
}

#[test]
fn unaligned_appends_accumulate() {
    let s = store();
    let b = s.create().id();
    let mut model = Model::new();
    // Sizes chosen to hit every boundary case: sub-page, page-crossing,
    // exact page, page+1.
    for (i, len) in [3usize, 61, 64, 65, 1, 200, 128, 7].into_iter().enumerate() {
        let data = patterned(len, i as u8);
        let v = s.append(b, &data).unwrap();
        model.apply_append(v, &data);
    }
    let recent = Version(8);
    s.sync(b, recent).unwrap();
    model.check_all(&s, b);
}

#[test]
fn unaligned_overwrites_merge_correctly() {
    let s = store();
    let b = s.create().id();
    let mut model = Model::new();
    let base = patterned(PSIZE as usize * 5, 9);
    let v1 = s.append(b, &base).unwrap();
    model.apply_append(v1, &base);
    // Overwrites at awkward offsets/lengths.
    for (i, (offset, len)) in
        [(1u64, 5usize), (63, 2), (100, 64), (0, 1), (319, 1), (30, 300)].into_iter().enumerate()
    {
        let data = patterned(len, 100 + i as u8);
        let v = s.write(b, &data, offset).unwrap();
        model.apply_write(v, offset, &data);
    }
    s.sync(b, Version(7)).unwrap();
    model.check_all(&s, b);
}

#[test]
fn write_extending_past_end_grows_blob() {
    let s = store();
    let b = s.create().id();
    let mut model = Model::new();
    let v1 = s.append(b, &patterned(100, 1)).unwrap();
    model.apply_append(v1, &patterned(100, 1));
    // Write starting inside, ending past the end (partially overwrite,
    // partially extend).
    let d = patterned(200, 2);
    let v2 = s.write(b, &d, 50).unwrap();
    model.apply_write(v2, 50, &d);
    // Write starting exactly at the end behaves like an append.
    let d2 = patterned(30, 3);
    let v3 = s.write(b, &d2, 250).unwrap();
    model.apply_write(v3, 250, &d2);
    s.sync(b, v3).unwrap();
    model.check_all(&s, b);
}

#[test]
fn write_beyond_end_rejected() {
    let s = store();
    let b = s.create().id();
    let v1 = s.append(b, b"x").unwrap();
    s.sync(b, v1).unwrap();
    assert!(matches!(s.write(b, b"y", 2), Err(BlobError::WriteBeyondEnd { .. })));
    assert!(matches!(s.append(b, b""), Err(BlobError::EmptyUpdate)));
}

#[test]
fn read_unpublished_version_fails() {
    let s = store();
    let b = s.create().id();
    assert!(matches!(s.read(b, Version(1), 0, 1), Err(BlobError::VersionNotPublished { .. })));
    assert!(matches!(s.get_size(b, Version(3)), Err(BlobError::VersionNotPublished { .. })));
}

#[test]
fn read_your_writes_via_sync() {
    let s = store();
    let b = s.create().id();
    for i in 0..20u8 {
        let data = patterned(97, i);
        let v = s.append(b, &data).unwrap();
        s.sync(b, v).unwrap();
        let size = s.get_size(b, v).unwrap();
        let got = s.read(b, v, size - 97, 97).unwrap();
        assert_eq!(got, data, "iteration {i}");
    }
}

#[test]
fn branching_diverges_and_shares() {
    let s = store();
    let b = s.create().id();
    let base = patterned(PSIZE as usize * 3, 0);
    let v1 = s.append(b, &base).unwrap();
    s.sync(b, v1).unwrap();

    let fork = s.branch(b, v1).unwrap().id();
    // Divergent evolution.
    let vb = s.write(b, &patterned(64, 1), 0).unwrap();
    let vf = s.write(fork, &patterned(64, 2), 0).unwrap();
    s.sync(b, vb).unwrap();
    s.sync(fork, vf).unwrap();
    assert_eq!(vb, Version(2));
    assert_eq!(vf, Version(2));
    assert_eq!(s.read(b, vb, 0, 64).unwrap(), patterned(64, 1));
    assert_eq!(s.read(fork, vf, 0, 64).unwrap(), patterned(64, 2));
    // The shared snapshot reads identically through both blobs.
    assert_eq!(s.read(b, v1, 0, 192).unwrap(), base);
    assert_eq!(s.read(fork, v1, 0, 192).unwrap(), base);
    // Recursive branching ("possibly recursively", paper §1).
    let fork2 = s.branch(fork, vf).unwrap().id();
    let vf2 = s.append(fork2, b"deep").unwrap();
    s.sync(fork2, vf2).unwrap();
    assert_eq!(s.read(fork2, vf2, 0, 64).unwrap(), patterned(64, 2));
    let sz = s.get_size(fork2, vf2).unwrap();
    assert_eq!(s.read(fork2, vf2, sz - 4, 4).unwrap(), b"deep");
}

#[test]
fn branch_from_unpublished_fails() {
    let s = store();
    let b = s.create().id();
    assert!(matches!(s.branch(b, Version(1)), Err(BlobError::VersionNotPublished { .. })));
}

#[test]
fn storage_is_shared_across_versions() {
    // §4.3: "new storage space is necessary for newly written pages
    // only". 10 single-page overwrites of a 64-page blob must cost 10
    // extra pages, not 640.
    let s = store();
    let b = s.create().id();
    let v1 = s.append(b, &patterned(PSIZE as usize * 64, 0)).unwrap();
    s.sync(b, v1).unwrap();
    let base_pages = s.stats().physical_pages;
    assert_eq!(base_pages, 64);
    for i in 0..10u64 {
        let v = s.write(b, &patterned(PSIZE as usize, i as u8), i * 6 * PSIZE).unwrap();
        s.sync(b, v).unwrap();
    }
    let after = s.stats();
    assert_eq!(after.physical_pages, 64 + 10);
    // All 11 versions stay readable.
    for v in 1..=11u64 {
        assert_eq!(s.get_size(b, Version(v)).unwrap(), PSIZE * 64);
    }
}

#[test]
fn metadata_is_shared_across_versions() {
    // §4.1: metadata weaving creates O(pages_touched + depth) nodes per
    // update instead of a full rebuild.
    let s = store();
    let b = s.create().id();
    let v1 = s.append(b, &patterned(PSIZE as usize * 64, 0)).unwrap();
    s.sync(b, v1).unwrap();
    let base_nodes = s.stats().metadata_nodes;
    assert_eq!(base_nodes, 127, "full 64-page tree");
    let v2 = s.write(b, &patterned(PSIZE as usize, 1), 0).unwrap();
    s.sync(b, v2).unwrap();
    // One leaf + the 6 inner nodes up the spine.
    assert_eq!(s.stats().metadata_nodes, 127 + 7);
}

#[test]
fn concurrent_appenders_against_model() {
    // N threads append concurrently; afterwards, replaying the updates
    // in *version* order on the model must reproduce every snapshot.
    let s = store();
    let b = s.create().id();
    let threads = 8;
    let per_thread = 25;
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = s.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let mut out = Vec::new();
            for i in 0..per_thread {
                let len = rng.gen_range(1..200);
                let data = patterned(len, (t * per_thread + i) as u8);
                let v = s.append(b, &data).unwrap();
                out.push((v, data));
            }
            out
        }));
    }
    let mut by_version: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for h in handles {
        for (v, data) in h.join().unwrap() {
            assert!(by_version.insert(v.raw(), data).is_none(), "duplicate version");
        }
    }
    let last = Version((threads * per_thread) as u64);
    s.sync(b, last).unwrap();
    // Dense version space.
    assert_eq!(*by_version.keys().last().unwrap(), last.raw());

    let mut model = Model::new();
    for (&v, data) in &by_version {
        model.apply_append(Version(v), data);
    }
    model.check_all(&s, b);
}

#[test]
fn concurrent_writers_and_readers() {
    // Writers overwrite random ranges while readers continuously read
    // *published* snapshots; readers must never observe an error or a
    // torn page boundary.
    let s = store();
    let b = s.create().id();
    let blob_len = PSIZE as usize * 32;
    let v1 = s.append(b, &patterned(blob_len, 0)).unwrap();
    s.sync(b, v1).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..4 {
        let s = s.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1000 + r);
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let v = s.get_recent(b).unwrap();
                let size = s.get_size(b, v).unwrap();
                let offset = rng.gen_range(0..size);
                let len = rng.gen_range(0..=(size - offset).min(500));
                s.read(b, v, offset, len).unwrap();
                reads += 1;
            }
            reads
        }));
    }
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let s = s.clone();
        writers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(w);
            for i in 0..30 {
                let offset = rng.gen_range(0..(blob_len as u64 - 300));
                let len = rng.gen_range(1..300);
                let data = patterned(len, (w * 31 + i) as u8);
                let v = s.write(b, &data, offset).unwrap();
                s.sync(b, v).unwrap();
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_reads > 0, "readers made progress");
    assert_eq!(s.get_recent(b).unwrap(), Version(1 + 4 * 30));
}

#[test]
fn serialized_metadata_mode_is_correct_too() {
    // The E5 ablation baseline must produce identical results, just
    // slower — writers serialize on publication order.
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .concurrency_mode(ConcurrencyMode::SerializedMetadata)
        .build()
        .unwrap();
    let b = s.create().id();
    let mut handles = Vec::new();
    for t in 0..4 {
        let s = s.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let data = patterned(100, (t * 10 + i) as u8);
                s.append(b, &data).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    s.sync(b, Version(40)).unwrap();
    assert_eq!(s.get_size(b, Version(40)).unwrap(), 4000);
}

#[test]
fn allocation_strategies_all_work() {
    for strategy in [
        AllocationStrategy::RoundRobin,
        AllocationStrategy::Random,
        AllocationStrategy::LeastLoaded,
        AllocationStrategy::PowerOfTwoChoices,
    ] {
        let s = BlobSeer::builder()
            .page_size(PSIZE)
            .data_providers(5)
            .allocation(strategy)
            .build()
            .unwrap();
        let b = s.create().id();
        let data = patterned(PSIZE as usize * 10 + 17, 7);
        let v = s.append(b, &data).unwrap();
        s.sync(b, v).unwrap();
        assert_eq!(s.read(b, v, 0, data.len() as u64).unwrap(), data, "strategy {strategy:?}");
    }
}

#[test]
fn random_mixed_workload_against_model() {
    let s = store();
    let b = s.create().id();
    let mut model = Model::new();
    let mut rng = StdRng::seed_from_u64(0xb10b);
    let mut recent = Version(0);
    for step in 0..60 {
        let cur_size = model.snapshots[&recent.raw()].len() as u64;
        if cur_size == 0 || rng.gen_bool(0.4) {
            let len = rng.gen_range(1..400);
            let data = patterned(len, step as u8);
            let v = s.append(b, &data).unwrap();
            model.apply_append(v, &data);
            recent = recent.next();
        } else {
            let offset = rng.gen_range(0..=cur_size);
            let len = rng.gen_range(1..300);
            let data = patterned(len, step as u8);
            let v = s.write(b, &data, offset).unwrap();
            model.apply_write(v, offset, &data);
            recent = recent.next();
        }
    }
    s.sync(b, recent).unwrap();
    model.check_all(&s, b);
}
