//! Writer fault tolerance end to end: version leases, abort/skip, and
//! the repair path. The acceptance scenario of the PR: kill a writer
//! mid-pipelined-update and watch every later version publish after
//! lease expiry, with the aborted version skipped in every snapshot
//! lineage and surfaced as `VersionAborted` to racing readers.

use std::time::Duration;

use blobseer::{BlobError, BlobSeer, ByteRange, Bytes, CrashPoint, Version};

const PSIZE: u64 = 4096;

fn store(lease_ttl: u64) -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .lease_ttl_ticks(lease_ttl)
        .build()
        .unwrap()
}

fn filled(len: usize, fill: u8) -> Bytes {
    Bytes::from(vec![fill; len])
}

#[test]
fn dead_writer_is_swept_and_later_versions_publish() {
    let s = store(20);
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();

    // The writer of v2 dies right after version assignment.
    let dead = blob.crash_append(filled(PSIZE as usize, 2), CrashPoint::AfterPrepare).unwrap();
    assert_eq!(dead, Version(2));

    // Two later pipelined writers complete; they cannot publish yet.
    let p3 = blob.append_pipelined(filled(PSIZE as usize, 3)).unwrap();
    let p4 = blob.append_pipelined(filled(PSIZE as usize, 4)).unwrap();
    assert_eq!(p3.wait().unwrap(), Version(3));
    assert_eq!(p4.wait().unwrap(), Version(4));
    assert_eq!(blob.recent_version().unwrap(), v1, "publication wedged behind the hole");

    // A racing reader parks on the dead version.
    let reader = {
        let blob = blob.clone();
        std::thread::spawn(move || blob.sync(dead))
    };
    std::thread::sleep(Duration::from_millis(20));

    // Lease expiry + sweep recovers the blob.
    s.advance_lease_clock(21);
    let report = s.sweep_expired_leases();
    assert_eq!(report.aborted, vec![(blob.id(), dead)]);
    assert!(report.pending.is_empty());

    // (a) every later version published,
    blob.sync(Version(4)).unwrap();
    assert_eq!(blob.recent_version().unwrap(), Version(4));
    // (b) the racing reader got the typed error,
    assert!(
        matches!(reader.join().unwrap(), Err(BlobError::VersionAborted { version, .. }) if version == dead)
    );
    // (c) the hole is skipped in every snapshot lineage,
    assert!(matches!(blob.snapshot(dead), Err(BlobError::VersionAborted { .. })));
    assert!(matches!(blob.size(dead), Err(BlobError::VersionAborted { .. })));
    assert!(matches!(blob.branch(dead), Err(BlobError::VersionAborted { .. })));
    // (d) later snapshots read the hole as zeros and survivors intact.
    let snap = blob.snapshot(Version(4)).unwrap();
    assert_eq!(snap.len(), 4 * PSIZE, "aborted appends keep their assigned offsets");
    let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
    let page = PSIZE as usize;
    assert!(bytes[..page].iter().all(|&b| b == 1));
    assert!(bytes[page..2 * page].iter().all(|&b| b == 0), "the hole reads as zeros");
    assert!(bytes[2 * page..3 * page].iter().all(|&b| b == 3));
    assert!(bytes[3 * page..].iter().all(|&b| b == 4));
    // Earlier snapshots are untouched.
    assert_eq!(blob.snapshot(v1).unwrap().len(), PSIZE);
    assert_eq!(s.stats().vm.aborted, 1);
}

#[test]
fn every_crash_point_recovers() {
    for point in [
        CrashPoint::AfterPrepare,
        CrashPoint::AfterBoundaryPages,
        CrashPoint::AfterPartialMetadata,
        CrashPoint::BeforeNotify,
    ] {
        let s = store(10);
        let blob = s.create();
        let base: Vec<u8> = (0..2 * PSIZE as usize).map(|i| (i % 251) as u8).collect();
        let v1 = blob.append(&base).unwrap();
        blob.sync(v1).unwrap();

        // Unaligned crash-write overlapping live data: the repair must
        // reconstruct the predecessor's bytes over the hole.
        let _dead = blob.crash_write(filled(PSIZE as usize, 0xEE), PSIZE / 2, point).unwrap();
        let v3 = blob.append(&[7u8; 16]).unwrap();
        s.advance_lease_clock(11);
        let report = s.sweep_expired_leases();
        assert_eq!(report.aborted.len(), 1, "{point:?}");
        blob.sync(v3).unwrap();

        // The dead overwrite's trace is deterministic per crash point:
        // nothing unless every leaf node was durable (BeforeNotify),
        // in which case repair keeps the durable nodes and the hole
        // carries the dead writer's bytes.
        let snap = blob.snapshot(v3).unwrap();
        assert_eq!(snap.len(), 2 * PSIZE + 16);
        let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
        let mut want = base.clone();
        if point == CrashPoint::BeforeNotify {
            let (from, to) = (PSIZE as usize / 2, PSIZE as usize / 2 + PSIZE as usize);
            want[from..to].fill(0xEE);
        }
        assert_eq!(&bytes[..base.len()], &want[..], "{point:?}: wrong hole content");
        assert!(bytes[base.len()..].iter().all(|&b| b == 7));
    }
}

#[test]
fn background_sweeper_recovers_without_manual_sweep() {
    let s = store(5);
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();
    let dead = blob.crash_append(filled(PSIZE as usize, 2), CrashPoint::AfterPrepare).unwrap();

    // Later pipelined traffic advances the logical clock past the TTL;
    // its completion stages run the sweeper themselves (self-help at
    // stage start, background job at stage end) — no manual sweep.
    // Page-aligned appends: their stages never block on the dead
    // version's metadata (no boundary merge), so the deployment keeps
    // making the progress that drives its own recovery.
    let mut last = Version(0);
    for i in 0..6u8 {
        last = blob.append_pipelined(filled(PSIZE as usize, 3 + i)).unwrap().wait().unwrap();
    }
    blob.sync(last).unwrap();
    assert_eq!(blob.recent_version().unwrap(), last);
    assert!(matches!(blob.snapshot(dead), Err(BlobError::VersionAborted { .. })));
    assert_eq!(s.stats().vm.aborted, 1);
}

#[test]
fn explicit_abort_cancels_a_pending_write() {
    let s = store(1 << 20);
    let blob = s.create();
    let v1 = blob.append(&[9u8; 32]).unwrap();
    blob.sync(v1).unwrap();

    // Cancel a wedged update explicitly — no lease expiry involved.
    let dead = blob.crash_append(filled(32, 1), CrashPoint::AfterPrepare).unwrap();
    blob.abort(dead).unwrap();
    let v3 = blob.append(&[8u8; 32]).unwrap();
    blob.sync(v3).unwrap();
    let snap = blob.latest().unwrap();
    assert_eq!(snap.version(), v3);
    let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
    assert_eq!(&bytes[..32], &[9u8; 32][..]);
    assert_eq!(&bytes[32..64], &[0u8; 32][..]);
    assert_eq!(&bytes[64..], &[8u8; 32][..]);

    // Aborting a published version is a typed conflict.
    assert!(matches!(blob.abort(v1), Err(BlobError::AbortConflict(_))));
    // Double abort likewise.
    assert!(matches!(blob.abort(dead), Err(BlobError::AbortConflict(_))));
}

#[test]
fn pending_write_abort_entry_point() {
    let s = store(1 << 20);
    let blob = s.create();
    let v1 = blob.append(&[1u8; 32]).unwrap();
    blob.sync(v1).unwrap();

    let pending = blob.append_pipelined(filled(32, 2)).unwrap();
    let v = pending.version();
    match pending.abort() {
        // Raced the abort in before the stage completed: the version is
        // a hole now and later writers publish over it.
        Ok(()) => {
            assert!(matches!(blob.snapshot(v), Err(BlobError::VersionAborted { .. })));
        }
        // The stage won the race and completed first — equally valid.
        Err(BlobError::AbortConflict(_)) => {
            blob.sync(v).unwrap();
        }
        other => panic!("unexpected: {other:?}"),
    }
    let v3 = blob.append(&[3u8; 32]).unwrap();
    blob.sync(v3).unwrap();
    assert_eq!(blob.recent_version().unwrap(), v3);
}

#[test]
fn failed_update_aborts_itself_instead_of_wedging() {
    // All providers down mid-sequence: the failing append must retire
    // its version so the next (post-recovery) append publishes.
    let s = store(1 << 20);
    let blob = s.create();
    let v1 = blob.append(&vec![1u8; PSIZE as usize]).unwrap();
    blob.sync(v1).unwrap();

    for p in 0..4 {
        s.fail_provider(blobseer::ProviderId(p)).unwrap();
    }
    let err = blob.append(&vec![2u8; PSIZE as usize]);
    assert!(err.is_err(), "append with every provider down must fail");
    for p in 0..4 {
        s.recover_provider(blobseer::ProviderId(p)).unwrap();
    }

    // The failed version may need a sweep retry (its repair also needs
    // providers); run one now that they are back.
    s.sweep_expired_leases();
    let v3 = blob.append(&vec![3u8; PSIZE as usize]).unwrap();
    blob.sync(v3).unwrap();
    assert_eq!(blob.recent_version().unwrap(), v3);
    let snap = blob.snapshot(v3).unwrap();
    let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
    assert!(bytes[..PSIZE as usize].iter().all(|&b| b == 1));
    assert!(bytes[2 * PSIZE as usize..].iter().all(|&b| b == 3));
}

#[test]
fn snapshots_pinned_before_an_abort_stay_valid() {
    let s = store(10);
    let blob = s.create();
    let v1 = blob.append(&[5u8; 100]).unwrap();
    blob.sync(v1).unwrap();
    let pinned = blob.snapshot(v1).unwrap();

    let dead = blob.crash_append(filled(100, 6), CrashPoint::BeforeNotify).unwrap();
    s.advance_lease_clock(11);
    s.sweep_expired_leases();
    assert!(matches!(blob.snapshot(dead), Err(BlobError::VersionAborted { .. })));

    // The pinned (published, lower) snapshot is unaffected by the abort.
    let bytes = pinned.read(ByteRange::new(0, pinned.len())).unwrap();
    assert!(bytes.iter().all(|&b| b == 5));
}

#[test]
fn gc_and_abort_compose() {
    let s = store(10);
    let blob = s.create();
    let mut versions = Vec::new();
    for i in 0..3u8 {
        versions.push(blob.append(&vec![i + 1; PSIZE as usize]).unwrap());
    }
    blob.sync(versions[2]).unwrap();
    let dead = blob.crash_append(filled(PSIZE as usize, 9), CrashPoint::AfterPrepare).unwrap();

    // GC requires quiescence: a wedged (not yet aborted) version blocks it.
    assert!(matches!(blob.retire_versions(versions[2]), Err(BlobError::GcConflict(_))));
    s.advance_lease_clock(11);
    s.sweep_expired_leases();
    let v5 = blob.append(&vec![10u8; PSIZE as usize]).unwrap();
    blob.sync(v5).unwrap();

    // Retire everything below the aborted hole; the repair tree of the
    // hole survives as part of retained history.
    let report = blob.retire_versions(dead).unwrap();
    assert!(report.nodes_removed > 0);
    assert!(matches!(blob.snapshot(versions[0]), Err(BlobError::VersionRetired { .. })));
    let snap = blob.snapshot(v5).unwrap();
    let bytes = snap.read(ByteRange::new(0, snap.len())).unwrap();
    let page = PSIZE as usize;
    assert!(bytes[3 * page..4 * page].iter().all(|&b| b == 0), "hole still zeros");
    assert!(bytes[4 * page..].iter().all(|&b| b == 10));
}
