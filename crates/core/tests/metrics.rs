//! Observability end to end: the PR's acceptance scenario. Drive a
//! mixed workload — appends, snapshot reads, a deliberately wedged
//! version that blocks a boundary merge in the metadata DHT, a lease
//! sweep and an orphan scrub — then check that `stats_snapshot()`
//! reports populated tail percentiles for every exercised operation
//! and that the Prometheus exposition carries the same story.

use blobseer::{BlobSeer, ByteRange, Bytes, CrashPoint};

const PSIZE: u64 = 4096;

fn store(lease_ttl: u64) -> BlobSeer {
    BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(4)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .lease_ttl_ticks(lease_ttl)
        .build()
        .unwrap()
}

fn assert_populated(lat: blobseer::OpLatency, want_count: u64, what: &str) {
    assert_eq!(lat.count, want_count, "{what}: sample count");
    assert!(lat.p50_ns > 0, "{what}: p50 populated");
    assert!(lat.p50_ns <= lat.p90_ns, "{what}: p50 <= p90");
    assert!(lat.p90_ns <= lat.p99_ns, "{what}: p90 <= p99");
    assert!(lat.p99_ns <= lat.p999_ns, "{what}: p99 <= p999");
    assert!(lat.p999_ns <= lat.max_ns, "{what}: p999 <= max");
    assert!(lat.mean_ns > 0 && lat.mean_ns <= lat.max_ns, "{what}: mean within range");
}

#[test]
fn stats_snapshot_reports_tail_percentiles_for_a_mixed_workload() {
    let s = store(20);
    let blob = s.create();

    let mut last = blobseer::Version(0);
    for i in 0..10u8 {
        last = blob.append(&vec![i; PSIZE as usize]).unwrap();
    }
    blob.sync(last).unwrap();
    let snap = blob.snapshot(last).unwrap();
    for i in 0..10u64 {
        snap.read(ByteRange::new(i * PSIZE, PSIZE)).unwrap();
    }
    snap.read_scatter(ByteRange::new(0, 4 * PSIZE)).unwrap();
    snap.readv(&[ByteRange::new(0, PSIZE), ByteRange::new(5 * PSIZE, PSIZE)]).unwrap();

    let stats = s.stats_snapshot();
    assert_populated(stats.append, 10, "append");
    assert_populated(stats.read, 10, "read");
    assert_populated(stats.read_scatter, 1, "read_scatter");
    assert_populated(stats.readv, 1, "readv");
    // Every update runs a prepare half (10 appends).
    assert_populated(stats.write_prepare, 10, "write_prepare");
    // Nothing blocked and nothing was swept in this quiet workload.
    assert_eq!(stats.dht_get_wait.count, 0);
    assert_eq!(stats.write.count, 0);
}

#[test]
fn dht_get_wait_tail_is_recorded_when_a_merge_blocks() {
    let s = store(8);
    let blob = s.create();

    // Unaligned v1 so the next append needs a boundary merge.
    let v1 = blob.append(&[1u8; 100]).unwrap();
    blob.sync(v1).unwrap();
    // v2's writer dies after version assignment: its metadata never
    // lands, so v3's boundary merge parks in the DHT on v2's leaf.
    blob.crash_append(Bytes::from(vec![2u8; 100]), CrashPoint::AfterPrepare).unwrap();
    let p3 = blob.append_pipelined(Bytes::from(vec![3u8; 100])).unwrap();

    // Give the merge time to park, then abort the dead writer
    // explicitly (a lease sweep here would also expire the parked
    // v3); the repair tree materialises v2's leaf and unblocks v3.
    std::thread::sleep(std::time::Duration::from_millis(30));
    s.abort(&blob, blobseer::Version(2)).unwrap();
    let v3 = p3.wait().unwrap();
    blob.sync(v3).unwrap();

    let stats = s.stats_snapshot();
    assert!(stats.dht_get_wait.count >= 1, "the parked merge must be recorded");
    // The block spanned the sleep before the abort, so the tail is
    // tens of milliseconds — far above timer noise.
    assert!(
        stats.dht_get_wait.p999_ns >= 10_000_000,
        "blocked wait of ~30ms, got p999 = {}ns",
        stats.dht_get_wait.p999_ns
    );
}

#[test]
fn scrub_phases_are_timed_separately() {
    let s = store(8);
    let blob = s.create();
    blob.append(&[7u8; PSIZE as usize]).unwrap();
    // Leak a page: dead after storing pages, before any metadata.
    blob.crash_append(Bytes::from(vec![9u8; PSIZE as usize]), CrashPoint::AfterPrepare).unwrap();
    s.advance_lease_clock(9);
    s.sweep_expired_leases();
    let report = s.scrub_orphans().unwrap();
    assert_eq!(report.pages_reclaimed, 1);

    let stats = s.stats_snapshot();
    assert_populated(stats.scrub_mark, 1, "scrub_mark");
    assert_populated(stats.scrub_sweep, 1, "scrub_sweep");
    // The one explicit sweep is timed too (no pipelined traffic here,
    // so no opportunistic background sweeps muddy the count).
    assert_populated(stats.lease_sweep, 1, "lease_sweep");
}

#[test]
fn metrics_text_is_scrape_ready() {
    let s = store(20);
    let blob = s.create();
    let v = blob.append(&[1u8; PSIZE as usize]).unwrap();
    blob.sync(v).unwrap();
    blob.snapshot(v).unwrap().read(ByteRange::new(0, PSIZE)).unwrap();

    let text = s.metrics_text();
    // Counters.
    assert!(text.contains("# TYPE blobseer_append_ops_total counter"));
    assert!(text.contains("blobseer_append_ops_total 1\n"));
    assert!(text.contains("blobseer_read_ops_total 1\n"));
    assert!(text.contains("blobseer_write_ops_total 0\n"));
    // Latency summaries with quantile lines for exercised ops.
    assert!(text.contains("# TYPE blobseer_append_latency_seconds summary"));
    assert!(text.contains("blobseer_append_latency_seconds{quantile=\"0.999\"}"));
    assert!(text.contains("blobseer_append_latency_seconds_count 1\n"));
    assert!(text.contains("blobseer_read_latency_seconds{quantile=\"0.5\"}"));
    // Unexercised histograms render without quantile lines.
    assert!(text.contains("# TYPE blobseer_scrub_mark_latency_seconds summary"));
    assert!(!text.contains("blobseer_scrub_mark_latency_seconds{quantile"));
    assert!(text.contains("blobseer_scrub_mark_latency_seconds_count 0\n"));
    // The DHT's shared block-time histogram is registered.
    assert!(text.contains("# TYPE blobseer_dht_get_wait_seconds summary"));
    // Deployment gauges appended from StoreStats.
    assert!(text.contains("# TYPE blobseer_physical_bytes gauge"));
    assert!(text.contains(&format!("blobseer_physical_bytes {PSIZE}\n")));
    assert!(text.contains("blobseer_physical_pages 1\n"));
    // Every line is either a comment or `name[{labels}] value`.
    for line in text.lines() {
        assert!(
            line.starts_with('#')
                || line
                    .split_once(' ')
                    .is_some_and(|(name, value)| !name.is_empty() && !value.is_empty()),
            "malformed exposition line: {line:?}"
        );
    }
}

#[test]
fn latency_metrics_off_still_counts_operations() {
    let s = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(2)
        .metadata_providers(2)
        .io_threads(1)
        .pipeline_threads(1)
        .latency_metrics(false)
        .build()
        .unwrap();
    let blob = s.create();
    let v = blob.append(&[1u8; PSIZE as usize]).unwrap();
    blob.sync(v).unwrap();
    blob.snapshot(v).unwrap().read(ByteRange::new(0, PSIZE)).unwrap();

    // Ops still count; no latency sample is recorded anywhere.
    let text = s.metrics_text();
    assert!(text.contains("blobseer_append_ops_total 1\n"));
    assert!(text.contains("blobseer_read_ops_total 1\n"));
    let stats = s.stats_snapshot();
    assert_eq!(stats.append.count, 0);
    assert_eq!(stats.read.count, 0);
    assert_eq!(stats.write_prepare.count, 0);
    assert_eq!(stats.append.p999_ns, 0);
}

#[test]
fn pipelined_updates_record_latency_on_completion() {
    let s = store(20);
    let blob = s.create();
    let pending: Vec<_> = (0..4u8)
        .map(|i| blob.append_pipelined(Bytes::from(vec![i; PSIZE as usize])).unwrap())
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    let stats = s.stats_snapshot();
    assert_populated(stats.append, 4, "pipelined append");
}
