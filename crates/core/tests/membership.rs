//! Acceptance tests for elastic provider membership: live joins
//! (`add_provider`), safe drains (`drain_provider`), and the
//! interaction of both with writers, failover, GC and the scrubber.

use std::sync::Arc;

use blobseer::{
    Blob, BlobError, BlobSeer, ByteRange, Bytes, MemoryPageStore, PageStore, ProviderId, Version,
};

const PSIZE: u64 = 64;

/// A deployment over `n` shared in-memory page stores (returned so
/// tests can inspect or corrupt the physical copies underneath the
/// providers), replication 2.
fn store_with_handles(n: usize) -> (BlobSeer, Vec<Arc<MemoryPageStore>>) {
    let handles: Vec<Arc<MemoryPageStore>> =
        (0..n).map(|_| Arc::new(MemoryPageStore::new())).collect();
    let store = BlobSeer::builder()
        .page_size(PSIZE)
        .data_providers(n)
        .metadata_providers(2)
        .io_threads(2)
        .pipeline_threads(2)
        .replication(2)
        .page_stores(handles.iter().map(|h| h.clone() as Arc<dyn PageStore>).collect())
        .build()
        .unwrap();
    (store, handles)
}

fn fill(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len).map(|i| seed.wrapping_add(i as u8).wrapping_mul(13) | 1).collect::<Vec<_>>(),
    )
}

fn read_all(blob: &Blob, v: Version) -> Bytes {
    let snap = blob.snapshot(v).unwrap();
    snap.read(ByteRange::new(0, snap.len())).unwrap()
}

/// Drain while pipelined writers are appending: the drain must
/// terminate, the victim must end empty, and every append — before,
/// during and after the drain — must read back byte-identical.
#[test]
fn drain_under_live_pipelined_writers() {
    let (store, handles) = store_with_handles(4);
    let blob = store.create();

    // A little pre-drain history so the victim holds pages.
    for i in 0..4 {
        let v = blob.append_bytes(fill(150, i)).unwrap();
        blob.sync(v).unwrap();
    }

    let writers: Vec<_> = (0..2u8)
        .map(|w| {
            let blob = blob.clone();
            std::thread::spawn(move || {
                let mut written = Vec::new();
                for i in 0..12u8 {
                    let data = fill(90 + w as usize, w.wrapping_mul(31).wrapping_add(i));
                    let v = blob.append_bytes(data.clone()).unwrap();
                    blob.sync(v).unwrap();
                    written.push((v, data));
                }
                written
            })
        })
        .collect();

    let victim = ProviderId(0);
    let report = store.drain_provider(victim).unwrap();
    assert_eq!(report.provider, victim);

    let mut written: Vec<(Version, Bytes)> = Vec::new();
    for w in writers {
        written.extend(w.join().unwrap());
    }

    // The victim is physically empty and stays write-refusing.
    assert_eq!(handles[0].page_count(), 0, "drained provider still holds pages");
    let members = store.membership();
    assert_eq!((members.active, members.retired), (3, 1));

    // Every concurrent append reads back byte-identical.
    for (v, data) in &written {
        let snap = blob.snapshot(*v).unwrap();
        let got =
            snap.read(ByteRange::new(snap.len() - data.len() as u64, data.len() as u64)).unwrap();
        assert_eq!(&got, data, "append at {v} corrupted by the drain");
    }
    // And the pre-drain history too.
    let _ = read_all(&blob, blob.recent_version().unwrap());

    // The drain shows up in the operator metrics.
    let text = store.metrics_text();
    assert!(text.contains("blobseer_providers_retired 1"), "missing retired gauge:\n{text}");
    assert!(text.contains("blobseer_drain_pages_migrated_total"), "missing migration counter");
}

/// The victim's own copy of a page is corrupt: migration must source
/// the bytes from a surviving replica. With that replica offline the
/// drain fails typed; after recovery it succeeds.
#[test]
fn drain_sources_from_replica_when_victim_copy_is_dead() {
    let (store, handles) = store_with_handles(3);
    let blob = store.create();
    let v = blob.append_bytes(fill(300, 7)).unwrap();
    blob.sync(v).unwrap();
    let before = read_all(&blob, v);

    // Corrupt every copy provider 0 holds, underneath the provider.
    let victim_pages = handles[0].scan().unwrap();
    assert!(!victim_pages.is_empty(), "test needs pages on the victim");
    for (pid, _) in &victim_pages {
        let good = handles[0].fetch(*pid).unwrap();
        let mut garbage = good.to_vec();
        for b in &mut garbage {
            *b ^= 0xA5;
        }
        handles[0].store(*pid, Bytes::from(garbage)).unwrap();
    }

    // With both survivors offline, no verifying source exists: the
    // drain must refuse — typed — and retire nothing.
    store.fail_provider(ProviderId(1)).unwrap();
    store.fail_provider(ProviderId(2)).unwrap();
    match store.drain_provider(ProviderId(0)) {
        Err(BlobError::DrainConflict(_)) => {}
        other => panic!("expected DrainConflict with survivors offline, got {other:?}"),
    }
    assert_eq!(store.membership().retired, 0);

    // Survivors back: every corrupt victim copy is re-sourced from a
    // verifying replica and the drain completes.
    store.recover_provider(ProviderId(1)).unwrap();
    store.recover_provider(ProviderId(2)).unwrap();
    let report = store.drain_provider(ProviderId(0)).unwrap();
    assert!(report.pages_evacuated > 0);
    assert_eq!(handles[0].page_count(), 0);
    assert_eq!(read_all(&blob, v), before, "drain through a dead copy corrupted data");

    // Convergence: repair after the drain has nothing to do.
    let repair = store.repair_replicas().unwrap();
    assert_eq!(repair.pages_unrepairable, 0);
    assert_eq!(repair.copies_repaired + repair.copies_failed, 0);
}

/// A freshly joined provider is immediately eligible: the very next
/// writes place copies on it.
#[test]
fn added_provider_receives_placement_immediately() {
    let (store, _handles) = store_with_handles(2);
    let blob = store.create();
    let v = blob.append_bytes(fill(200, 3)).unwrap();
    blob.sync(v).unwrap();

    let backing = Arc::new(MemoryPageStore::new());
    let id = store.add_provider_store(backing.clone() as Arc<dyn PageStore>);
    assert_eq!(id, ProviderId(2));
    let members = store.membership();
    assert_eq!((members.registered, members.active), (3, 3));

    // Round-robin over three candidates with replication 2: a handful
    // of pages is guaranteed to route a primary or replica to the
    // newcomer.
    for i in 0..4 {
        let v = blob.append_bytes(fill(260, 50 + i)).unwrap();
        blob.sync(v).unwrap();
    }
    assert!(backing.page_count() > 0, "joined provider never saw a page");

    // Everything reads back.
    let last = blob.recent_version().unwrap();
    let _ = read_all(&blob, last);
}

/// After a drain, read-path failover over the *new* membership is
/// still deterministic and complete: kill a survivor and every byte is
/// still served from the remaining replicas.
#[test]
fn failover_still_deterministic_after_membership_change() {
    let (store, handles) = store_with_handles(4);
    let blob = store.create();
    for i in 0..6 {
        let v = blob.append_bytes(fill(180, 100 + i)).unwrap();
        blob.sync(v).unwrap();
    }
    let last = blob.recent_version().unwrap();
    let before = read_all(&blob, last);

    store.drain_provider(ProviderId(1)).unwrap();
    assert_eq!(handles[1].page_count(), 0);
    assert_eq!(read_all(&blob, last), before);

    // Kill a survivor: replication 2 on the post-retirement chains must
    // still cover every page.
    store.fail_provider(ProviderId(2)).unwrap();
    assert_eq!(read_all(&blob, last), before, "failover after drain lost data");

    // Writes keep working too (failover re-places copies), and recovery
    // plus repair converges back to clean chains.
    let v = blob.append_bytes(fill(90, 200)).unwrap();
    blob.sync(v).unwrap();
    store.recover_provider(ProviderId(2)).unwrap();
    store.repair_replicas().unwrap();
    let repair = store.repair_replicas().unwrap();
    assert_eq!(repair.copies_repaired, 0);
    assert_eq!(read_all(&blob, blob.recent_version().unwrap()).len(), before.len() + 90);
}

/// Drain racing `retire_versions`: whatever the interleaving, the
/// outcome is a typed refusal or a successful drain — never a hung
/// drain, never data loss, and the retained snapshot stays
/// byte-identical.
#[test]
fn drain_racing_retire_is_typed_and_safe() {
    for round in 0..4u64 {
        let (store, handles) = store_with_handles(3);
        let blob = store.create();
        for i in 0..8 {
            let v = blob.append_bytes(fill(120, i)).unwrap();
            blob.sync(v).unwrap();
        }
        let keep = blob.recent_version().unwrap();
        let expect = read_all(&blob, keep);

        let retire_blob = blob.clone();
        let retirer = std::thread::spawn(move || {
            // Stagger the race differently each round.
            std::thread::sleep(std::time::Duration::from_micros(200 * round));
            retire_blob.retire_versions(keep)
        });
        let drain = store.drain_provider(ProviderId(0));
        let retire = retirer.join().unwrap();

        match &retire {
            Ok(_) | Err(BlobError::GcConflict(_)) => {}
            Err(other) => panic!("round {round}: retire failed untyped: {other}"),
        }
        match &drain {
            Ok(report) => {
                assert_eq!(handles[0].page_count(), 0, "round {round}");
                assert_eq!(report.provider, ProviderId(0));
                assert_eq!(store.membership().retired, 1);
            }
            Err(BlobError::DrainConflict(_)) => {
                // Refused: nothing retired, the provider serves again.
                assert_eq!(store.membership().retired, 0);
                assert_eq!(store.membership().draining, 0);
            }
            Err(other) => panic!("round {round}: drain failed untyped: {other}"),
        }
        // Either way the retained snapshot is intact.
        assert_eq!(read_all(&blob, keep), expect, "round {round}: snapshot changed");
        // And the system is drainable/scrubbable afterwards.
        store.scrub_orphans().unwrap();
        if drain.is_err() {
            store.drain_provider(ProviderId(0)).unwrap();
            assert_eq!(handles[0].page_count(), 0);
        }
    }
}

/// An offline provider cannot be drained — migration needs its page
/// scan — and the refusal is typed and actionable.
#[test]
fn offline_provider_blocks_drain_typed() {
    let (store, handles) = store_with_handles(3);
    let blob = store.create();
    let v = blob.append_bytes(fill(140, 9)).unwrap();
    blob.sync(v).unwrap();

    store.fail_provider(ProviderId(2)).unwrap();
    match store.drain_provider(ProviderId(2)) {
        Err(BlobError::DrainConflict(why)) => {
            assert!(why.contains("offline"), "unhelpful refusal: {why}");
        }
        other => panic!("expected DrainConflict, got {other:?}"),
    }
    assert_eq!(store.membership().retired, 0);

    // Recover, drain, done.
    store.recover_provider(ProviderId(2)).unwrap();
    store.drain_provider(ProviderId(2)).unwrap();
    assert_eq!(handles[2].page_count(), 0);
}

/// Draining must leave at least one active survivor, and a retired
/// provider cannot be drained again; both refusals are typed.
#[test]
fn drain_refuses_last_survivor_and_double_drain() {
    let (store, _handles) = store_with_handles(3);
    let blob = store.create();
    let v = blob.append_bytes(fill(100, 5)).unwrap();
    blob.sync(v).unwrap();

    store.drain_provider(ProviderId(0)).unwrap();
    match store.drain_provider(ProviderId(0)) {
        Err(BlobError::DrainConflict(why)) => {
            assert!(why.contains("retired"), "unhelpful refusal: {why}")
        }
        other => panic!("expected DrainConflict on double drain, got {other:?}"),
    }

    store.drain_provider(ProviderId(1)).unwrap();
    // One active provider left: draining it would strand the data.
    match store.drain_provider(ProviderId(2)) {
        Err(BlobError::DrainConflict(why)) => {
            assert!(why.contains("survivor"), "unhelpful refusal: {why}")
        }
        other => panic!("expected DrainConflict on last survivor, got {other:?}"),
    }
    let members = store.membership();
    assert_eq!((members.registered, members.active, members.retired), (3, 1, 2));

    // The survivor still serves everything.
    assert_eq!(read_all(&blob, v).len(), 100);
}

/// A join after drains reuses no retired id, and placement hot-swap
/// applies to the next allocation without a rebuild.
#[test]
fn join_after_drain_and_placement_hot_swap() {
    let (store, _handles) = store_with_handles(3);
    store.drain_provider(ProviderId(1)).unwrap();

    let id = store.add_provider();
    assert_eq!(id, ProviderId(3), "retired ids must never be reused");
    let members = store.membership();
    assert_eq!((members.registered, members.active, members.retired), (4, 3, 1));

    store.set_placement(blobseer::AllocationStrategy::LeastLoaded);
    let blob = store.create();
    for i in 0..3 {
        let v = blob.append_bytes(fill(150, 60 + i)).unwrap();
        blob.sync(v).unwrap();
    }
    let last = blob.recent_version().unwrap();
    assert_eq!(read_all(&blob, last).len(), 450);
    let repair = store.repair_replicas().unwrap();
    assert_eq!(repair.pages_unrepairable, 0);
}
