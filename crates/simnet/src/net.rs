//! Nodes, resources and activity stages.

use crate::Nanos;

/// A node in the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Static description of a node's capacities.
#[derive(Clone, Copy, Debug)]
pub struct NodeSpec {
    /// Egress NIC capacity in bytes/second.
    pub egress_bps: f64,
    /// Ingress NIC capacity in bytes/second.
    pub ingress_bps: f64,
}

impl NodeSpec {
    /// The paper's measured Grid'5000 figure: 117.5 MB/s full duplex.
    pub fn grid5000() -> Self {
        NodeSpec { egress_bps: 117.5e6, ingress_bps: 117.5e6 }
    }
}

/// One directed transfer.
#[derive(Clone, Copy, Debug)]
pub struct TransferSpec {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Per-transfer processing charged serially at the sender's egress
    /// (send-path software cost: syscall, scatter-gather, storage read).
    pub src_overhead: Nanos,
    /// Per-transfer processing charged serially at the receiver's
    /// ingress (receive-path software cost: copy, checksum, store).
    pub dst_overhead: Nanos,
}

/// One step of an [`Activity`] chain.
#[derive(Clone, Copy, Debug)]
pub enum Stage {
    /// Pure think time; consumes no shared resource.
    Delay(Nanos),
    /// FIFO service on a node's CPU.
    Service {
        /// Serving node.
        node: NodeId,
        /// Service duration.
        duration: Nanos,
    },
    /// A network transfer (pays propagation latency plus NIC time).
    Transfer(TransferSpec),
}

/// A sequential chain of stages; batches of activities fork-join inside
/// a [`crate::Process`] step.
#[derive(Clone, Debug, Default)]
pub struct Activity {
    /// Stages executed in order.
    pub stages: Vec<Stage>,
}

impl Activity {
    /// Chain from a stage list.
    pub fn new(stages: Vec<Stage>) -> Self {
        Activity { stages }
    }

    /// A single-stage delay.
    pub fn delay(d: Nanos) -> Self {
        Activity::new(vec![Stage::Delay(d)])
    }
}

/// Per-resource booking state: the time until which the resource is
/// committed. Booking in event-time order makes this an exact FIFO
/// queue in the fluid approximation.
#[derive(Clone, Copy, Debug, Default)]
struct Resource {
    busy_until: Nanos,
    busy_total: Nanos,
}

impl Resource {
    /// Book `duration` starting no earlier than `now`; returns the
    /// completion time.
    fn book(&mut self, now: Nanos, duration: Nanos) -> Nanos {
        let start = self.busy_until.max(now);
        self.busy_until = start + duration;
        self.busy_total += duration;
        self.busy_until
    }
}

#[derive(Clone, Debug)]
struct NodeState {
    spec: NodeSpec,
    egress: Resource,
    ingress: Resource,
    cpu: Resource,
    bytes_sent: u64,
    bytes_received: u64,
}

/// Counters for one node after (or during) a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Cumulative egress busy time.
    pub egress_busy: Nanos,
    /// Cumulative ingress busy time.
    pub ingress_busy: Nanos,
    /// Cumulative CPU busy time.
    pub cpu_busy: Nanos,
}

/// The simulated cluster: nodes plus a uniform propagation latency.
#[derive(Clone, Debug)]
pub struct Network {
    nodes: Vec<NodeState>,
    latency: Nanos,
}

impl Network {
    /// Empty cluster with the given one-way propagation latency.
    pub fn new(latency: Nanos) -> Self {
        Network { nodes: Vec::new(), latency }
    }

    /// Add a node; ids are dense and allocation-ordered.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            spec,
            egress: Resource::default(),
            ingress: Resource::default(),
            cpu: Resource::default(),
            bytes_sent: 0,
            bytes_received: 0,
        });
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Book one stage at `now`; returns its completion time.
    pub(crate) fn book(&mut self, now: Nanos, stage: &Stage) -> Nanos {
        match *stage {
            Stage::Delay(d) => now + d,
            Stage::Service { node, duration } => {
                self.nodes[node.0 as usize].cpu.book(now, duration)
            }
            Stage::Transfer(t) => self.book_transfer(now, t),
        }
    }

    fn book_transfer(&mut self, now: Nanos, t: TransferSpec) -> Nanos {
        if t.src == t.dst {
            // Loopback: co-deployed roles exchanging data on one node.
            // No wire time or latency — only the send/receive software
            // path, charged to the node's CPU (so co-deployment still
            // contends with serving work, as on the real testbed).
            let n = &mut self.nodes[t.src.0 as usize];
            n.bytes_sent += t.bytes;
            n.bytes_received += t.bytes;
            return n.cpu.book(now, t.src_overhead + t.dst_overhead);
        }
        let rate = {
            let s = &self.nodes[t.src.0 as usize].spec;
            let d = &self.nodes[t.dst.0 as usize].spec;
            s.egress_bps.min(d.ingress_bps)
        };
        let xmit = ((t.bytes as f64 / rate) * 1e9) as Nanos;

        // Cut-through booking: the sender's egress and receiver's
        // ingress each carry the transmission time once; the receiver
        // side is offset by the propagation latency. Starting the
        // receiver booking from `send_done - xmit + latency` (i.e. the
        // first byte's arrival) keeps the two sides overlapped.
        let send_done = {
            let src = &mut self.nodes[t.src.0 as usize];
            src.bytes_sent += t.bytes;
            src.egress.book(now, t.src_overhead + xmit)
        };
        let first_byte_arrival = (send_done - xmit).saturating_add(self.latency);
        let dst = &mut self.nodes[t.dst.0 as usize];
        dst.bytes_received += t.bytes;
        dst.ingress.book(first_byte_arrival, t.dst_overhead + xmit)
    }

    /// Counter snapshot for `node`.
    pub fn stats(&self, node: NodeId) -> NetStats {
        let n = &self.nodes[node.0 as usize];
        NetStats {
            bytes_sent: n.bytes_sent,
            bytes_received: n.bytes_received,
            egress_busy: n.egress.busy_total,
            ingress_busy: n.ingress.busy_total,
            cpu_busy: n.cpu.busy_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::millis;

    fn two_nodes() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(millis(0.1));
        let a = net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 });
        let b = net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 });
        (net, a, b)
    }

    fn xfer(src: NodeId, dst: NodeId, bytes: u64) -> Stage {
        Stage::Transfer(TransferSpec { src, dst, bytes, src_overhead: 0, dst_overhead: 0 })
    }

    #[test]
    fn single_transfer_pays_latency_plus_wire_time() {
        let (mut net, a, b) = two_nodes();
        // 1 MB at 100 MB/s = 10 ms, plus 0.1 ms latency.
        let done = net.book(0, &xfer(a, b, 1_000_000));
        assert_eq!(done, millis(10.1));
    }

    #[test]
    fn same_source_serializes_on_egress() {
        let (mut net, a, b) = two_nodes();
        let d1 = net.book(0, &xfer(a, b, 1_000_000));
        let d2 = net.book(0, &xfer(a, b, 1_000_000));
        assert_eq!(d1, millis(10.1));
        assert_eq!(d2, millis(20.1), "second flow queues behind the first");
    }

    #[test]
    fn same_destination_serializes_on_ingress() {
        let mut net = Network::new(millis(0.1));
        let a = net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 });
        let b = net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 });
        let c = net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 });
        let d1 = net.book(0, &xfer(a, c, 1_000_000));
        let d2 = net.book(0, &xfer(b, c, 1_000_000));
        assert_eq!(d1, millis(10.1));
        assert_eq!(d2, millis(20.1));
    }

    #[test]
    fn disjoint_transfers_run_in_parallel() {
        let mut net = Network::new(millis(0.1));
        let nodes: Vec<NodeId> = (0..4)
            .map(|_| net.add_node(NodeSpec { egress_bps: 100e6, ingress_bps: 100e6 }))
            .collect();
        let d1 = net.book(0, &xfer(nodes[0], nodes[1], 1_000_000));
        let d2 = net.book(0, &xfer(nodes[2], nodes[3], 1_000_000));
        assert_eq!(d1, d2, "no shared resource, no queueing");
    }

    #[test]
    fn rate_is_bottleneck_of_endpoints() {
        let mut net = Network::new(0);
        let fast = net.add_node(NodeSpec { egress_bps: 200e6, ingress_bps: 200e6 });
        let slow = net.add_node(NodeSpec { egress_bps: 50e6, ingress_bps: 50e6 });
        let done = net.book(0, &xfer(fast, slow, 1_000_000));
        assert_eq!(done, millis(20.0), "limited by the 50 MB/s receiver");
    }

    #[test]
    fn overheads_charge_serially() {
        let (mut net, a, b) = two_nodes();
        let t = TransferSpec {
            src: a,
            dst: b,
            bytes: 1_000_000,
            src_overhead: millis(1.0),
            dst_overhead: millis(2.0),
        };
        let d1 = net.book(0, &Stage::Transfer(t));
        // src: 1 + 10 = 11ms; first byte at 11 - 10 + 0.1 = 1.1ms;
        // dst: 1.1 + 2 + 10 = 13.1ms.
        assert_eq!(d1, millis(13.1));
        // A second identical transfer queues behind both overheads.
        let d2 = net.book(0, &Stage::Transfer(t));
        assert_eq!(d2, millis(25.1));
    }

    #[test]
    fn service_queues_fifo() {
        let (mut net, a, _) = two_nodes();
        let s = Stage::Service { node: a, duration: millis(1.0) };
        assert_eq!(net.book(0, &s), millis(1.0));
        assert_eq!(net.book(0, &s), millis(2.0));
        // Booking later than the queue drain starts fresh.
        assert_eq!(net.book(millis(10.0), &s), millis(11.0));
    }

    #[test]
    fn delay_is_free() {
        let (mut net, a, b) = two_nodes();
        assert_eq!(net.book(5, &Stage::Delay(10)), 15);
        let _ = (a, b);
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, a, b) = two_nodes();
        net.book(0, &xfer(a, b, 500_000));
        net.book(0, &Stage::Service { node: b, duration: millis(3.0) });
        let sa = net.stats(a);
        let sb = net.stats(b);
        assert_eq!(sa.bytes_sent, 500_000);
        assert_eq!(sb.bytes_received, 500_000);
        assert_eq!(sa.egress_busy, millis(5.0));
        assert_eq!(sb.ingress_busy, millis(5.0));
        assert_eq!(sb.cpu_busy, millis(3.0));
    }
}
