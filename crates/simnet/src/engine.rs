//! The discrete-event engine driving processes over the network model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::net::{Activity, Network};
use crate::Nanos;

/// Identifies a spawned process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcessId(pub usize);

/// What a process does next.
pub enum Step {
    /// Fork the batch; the process is stepped again when *all* its
    /// activities complete (join). The batch must be non-empty.
    Await(Vec<Activity>),
    /// Like [`Step::Await`], but with at most `window` activities in
    /// flight: the engine starts the next queued activity as each one
    /// completes. This models bounded RPC pipelining — without it, a
    /// client would book an entire 1000-request batch ahead of every
    /// later-arriving client, which no real transport allows.
    AwaitWindow {
        /// Activities to run (in order of admission).
        activities: Vec<Activity>,
        /// Maximum number in flight at once (≥ 1).
        window: usize,
    },
    /// The process has finished.
    Done,
}

/// A simulated workload: a state machine stepped at fork-join points.
///
/// `step` is called once at start (with the spawn time) and then each
/// time the previously submitted batch has fully completed.
pub trait Process {
    /// Advance to the next phase.
    fn step(&mut self, now: Nanos) -> Step;
}

struct ActivityState {
    stages: Vec<crate::net::Stage>,
    next_stage: usize,
    owner: ProcessId,
}

struct ProcState {
    proc: Box<dyn Process>,
    outstanding: usize,
    queued: std::collections::VecDeque<Activity>,
    done: bool,
}

/// Event queue entry: `(time, sequence, activity)` — the sequence number
/// breaks ties FIFO, keeping runs deterministic.
type Event = Reverse<(Nanos, u64, usize)>;

/// The simulation engine: owns the network, the processes and the event
/// queue.
pub struct Engine {
    net: Network,
    clock: Nanos,
    seq: u64,
    events: BinaryHeap<Event>,
    activities: Vec<ActivityState>,
    processes: Vec<ProcState>,
}

impl Engine {
    /// Engine over a prepared network.
    pub fn new(net: Network) -> Self {
        Engine {
            net,
            clock: 0,
            seq: 0,
            events: BinaryHeap::new(),
            activities: Vec::new(),
            processes: Vec::new(),
        }
    }

    /// Read access to the network (stats).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Register a process; it takes its first step when `run` starts.
    pub fn spawn(&mut self, proc: Box<dyn Process>) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(ProcState {
            proc,
            outstanding: 0,
            queued: std::collections::VecDeque::new(),
            done: false,
        });
        id
    }

    fn submit(&mut self, owner: ProcessId, batch: Vec<Activity>, window: usize) {
        assert!(!batch.is_empty(), "Await batch must be non-empty (use Done)");
        assert!(window >= 1, "window must admit at least one activity");
        let p = &mut self.processes[owner.0];
        debug_assert_eq!(p.outstanding, 0);
        debug_assert!(p.queued.is_empty());
        let admit = window.min(batch.len());
        let mut iter = batch.into_iter();
        let head: Vec<Activity> = iter.by_ref().take(admit).collect();
        p.queued = iter.collect();
        p.outstanding = admit;
        for activity in head {
            self.start_activity(owner, activity);
        }
    }

    fn start_activity(&mut self, owner: ProcessId, activity: Activity) {
        assert!(!activity.stages.is_empty(), "activity must have stages");
        let id = self.activities.len();
        self.activities.push(ActivityState { stages: activity.stages, next_stage: 0, owner });
        self.advance_activity(id);
    }

    /// Book the next stage of `id` and queue its completion event.
    fn advance_activity(&mut self, id: usize) {
        let stage = self.activities[id].stages[self.activities[id].next_stage];
        let done_at = self.net.book(self.clock, &stage);
        self.seq += 1;
        self.events.push(Reverse((done_at, self.seq, id)));
    }

    fn step_process(&mut self, pid: ProcessId) {
        let step = self.processes[pid.0].proc.step(self.clock);
        match step {
            Step::Await(batch) => {
                let window = batch.len();
                self.submit(pid, batch, window);
            }
            Step::AwaitWindow { activities, window } => self.submit(pid, activities, window),
            Step::Done => self.processes[pid.0].done = true,
        }
    }

    /// Run to completion; returns the final virtual time. Panics if the
    /// event queue drains while some process still awaits work (a bug
    /// in the workload).
    pub fn run(&mut self) -> Nanos {
        for pid in 0..self.processes.len() {
            self.step_process(ProcessId(pid));
        }
        while let Some(Reverse((t, _, act))) = self.events.pop() {
            debug_assert!(t >= self.clock, "time must not run backwards");
            self.clock = t;
            let a = &mut self.activities[act];
            a.next_stage += 1;
            if a.next_stage < a.stages.len() {
                self.advance_activity(act);
                continue;
            }
            let owner = a.owner;
            let p = &mut self.processes[owner.0];
            p.outstanding -= 1;
            if let Some(next) = p.queued.pop_front() {
                p.outstanding += 1;
                self.start_activity(owner, next);
            } else if p.outstanding == 0 && !p.done {
                self.step_process(owner);
            }
        }
        assert!(
            self.processes.iter().all(|p| p.done),
            "event queue drained with unfinished processes"
        );
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{NodeId, NodeSpec, Stage, TransferSpec};
    use crate::{millis, Nanos};
    use std::sync::{Arc, Mutex};

    fn network(n: usize) -> (Network, Vec<NodeId>) {
        let mut net = Network::new(millis(0.1));
        let nodes = (0..n).map(|_| net.add_node(NodeSpec::grid5000())).collect();
        (net, nodes)
    }

    /// A process running a fixed list of phases, recording step times.
    struct Phased {
        phases: Vec<Vec<Activity>>,
        next: usize,
        log: Arc<Mutex<Vec<Nanos>>>,
    }

    impl Process for Phased {
        fn step(&mut self, now: Nanos) -> Step {
            self.log.lock().unwrap().push(now);
            if self.next < self.phases.len() {
                self.next += 1;
                Step::Await(self.phases[self.next - 1].clone())
            } else {
                Step::Done
            }
        }
    }

    #[test]
    fn fork_join_waits_for_slowest() {
        let (net, _) = network(2);
        let mut engine = Engine::new(net);
        let log = Arc::new(Mutex::new(Vec::new()));
        engine.spawn(Box::new(Phased {
            phases: vec![vec![
                Activity::delay(millis(5.0)),
                Activity::delay(millis(20.0)),
                Activity::delay(millis(1.0)),
            ]],
            next: 0,
            log: Arc::clone(&log),
        }));
        let end = engine.run();
        assert_eq!(end, millis(20.0));
        assert_eq!(*log.lock().unwrap(), vec![0, millis(20.0)]);
    }

    #[test]
    fn phases_are_sequential() {
        let (net, _) = network(2);
        let mut engine = Engine::new(net);
        let log = Arc::new(Mutex::new(Vec::new()));
        engine.spawn(Box::new(Phased {
            phases: vec![vec![Activity::delay(millis(3.0))], vec![Activity::delay(millis(4.0))]],
            next: 0,
            log: Arc::clone(&log),
        }));
        let end = engine.run();
        assert_eq!(end, millis(7.0));
        assert_eq!(*log.lock().unwrap(), vec![0, millis(3.0), millis(7.0)]);
    }

    #[test]
    fn multi_stage_activities_chain() {
        let (net, nodes) = network(2);
        let mut engine = Engine::new(net);
        let log = Arc::new(Mutex::new(Vec::new()));
        // Request-response RPC: 1 KB there, service, 1 KB back.
        let rpc = Activity::new(vec![
            Stage::Transfer(TransferSpec {
                src: nodes[0],
                dst: nodes[1],
                bytes: 0,
                src_overhead: 0,
                dst_overhead: 0,
            }),
            Stage::Service { node: nodes[1], duration: millis(1.0) },
            Stage::Transfer(TransferSpec {
                src: nodes[1],
                dst: nodes[0],
                bytes: 0,
                src_overhead: 0,
                dst_overhead: 0,
            }),
        ]);
        engine.spawn(Box::new(Phased { phases: vec![vec![rpc]], next: 0, log: Arc::clone(&log) }));
        let end = engine.run();
        // 0.1 latency + 1.0 service + 0.1 latency.
        assert_eq!(end, millis(1.2));
    }

    #[test]
    fn concurrent_processes_contend() {
        // Two clients each pushing 1 MB to the same server: the shared
        // ingress serializes them, so one finishes ~2x later.
        let (net, nodes) = network(3);
        let mut engine = Engine::new(net);
        let log = Arc::new(Mutex::new(Vec::new()));
        for client in [nodes[1], nodes[2]] {
            engine.spawn(Box::new(Phased {
                phases: vec![vec![Activity::new(vec![Stage::Transfer(TransferSpec {
                    src: client,
                    dst: nodes[0],
                    bytes: 1_175_000, // 10 ms at 117.5 MB/s
                    src_overhead: 0,
                    dst_overhead: 0,
                })])]],
                next: 0,
                log: Arc::clone(&log),
            }));
        }
        let end = engine.run();
        assert_eq!(end, millis(20.1));
        let stats = engine.network().stats(nodes[0]);
        assert_eq!(stats.bytes_received, 2 * 1_175_000);
    }

    #[test]
    fn determinism() {
        let run_once = || {
            let (net, nodes) = network(4);
            let mut engine = Engine::new(net);
            for i in 1..4 {
                engine.spawn(Box::new(Phased {
                    phases: vec![vec![Activity::new(vec![Stage::Transfer(TransferSpec {
                        src: nodes[i],
                        dst: nodes[0],
                        bytes: 100_000 * i as u64,
                        src_overhead: millis(0.05),
                        dst_overhead: millis(0.1),
                    })])]],
                    next: 0,
                    log: Arc::new(Mutex::new(Vec::new())),
                }));
            }
            engine.run()
        };
        assert_eq!(run_once(), run_once());
    }

    /// A process that runs one windowed batch of fixed-length delays.
    struct Windowed {
        n: usize,
        window: usize,
        started: bool,
    }

    impl Process for Windowed {
        fn step(&mut self, _now: Nanos) -> Step {
            if self.started {
                return Step::Done;
            }
            self.started = true;
            Step::AwaitWindow {
                activities: (0..self.n).map(|_| Activity::delay(millis(1.0))).collect(),
                window: self.window,
            }
        }
    }

    #[test]
    fn window_limits_concurrency() {
        // 8 one-ms delays with window 2 → 4 ms; window 8 → 1 ms.
        for (window, expect) in [(2usize, millis(4.0)), (8, millis(1.0)), (1, millis(8.0))] {
            let (net, _) = network(1);
            let mut engine = Engine::new(net);
            engine.spawn(Box::new(Windowed { n: 8, window, started: false }));
            assert_eq!(engine.run(), expect, "window {window}");
        }
    }

    #[test]
    fn window_interleaves_processes_fairly() {
        // Two clients pushing 8 transfers each through one server with
        // window 1 finish at (nearly) the same time; with unbounded
        // batches the first-spawned client would finish ~2x earlier.
        let (net, nodes) = network(3);
        let mut engine = Engine::new(net);
        let log = Arc::new(Mutex::new(Vec::new()));
        struct Win1 {
            src: NodeId,
            dst: NodeId,
            started: bool,
            log: Arc<Mutex<Vec<Nanos>>>,
        }
        impl Process for Win1 {
            fn step(&mut self, now: Nanos) -> Step {
                if self.started {
                    self.log.lock().unwrap().push(now);
                    return Step::Done;
                }
                self.started = true;
                Step::AwaitWindow {
                    activities: (0..8)
                        .map(|_| {
                            Activity::new(vec![Stage::Transfer(TransferSpec {
                                src: self.src,
                                dst: self.dst,
                                bytes: 117_500, // 1 ms
                                src_overhead: 0,
                                dst_overhead: 0,
                            })])
                        })
                        .collect(),
                    window: 1,
                }
            }
        }
        for src in [nodes[1], nodes[2]] {
            engine.spawn(Box::new(Win1 {
                src,
                dst: nodes[0],
                started: false,
                log: Arc::clone(&log),
            }));
        }
        engine.run();
        let ends = log.lock().unwrap().clone();
        let spread = ends[1].abs_diff(ends[0]);
        assert!(
            spread <= millis(2.0),
            "windowed clients finish within one slot of each other, spread {spread}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        let (net, _) = network(1);
        let mut engine = Engine::new(net);
        engine.spawn(Box::new(Phased {
            phases: vec![vec![]],
            next: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        }));
        engine.run();
    }
}
