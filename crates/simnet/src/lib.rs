//! A flow-level discrete-event network simulator.
//!
//! This crate stands in for the paper's Grid'5000 testbed (§5: 175
//! nodes, 1 Gbit/s links — 117.5 MB/s measured for TCP — and 0.1 ms
//! latency). The throughput experiments in the paper measure *bandwidth
//! under contention*; what determines those curves is how transfers
//! share NIC capacity and how requests queue at busy nodes, not packet-
//! level dynamics. Accordingly the model is *fluid*:
//!
//! * every node has three serial resources: **egress** NIC, **ingress**
//!   NIC, and a **CPU** serving requests FIFO;
//! * a [`Stage::Transfer`] books `bytes / min(src_cap, dst_cap)` of busy
//!   time on the source egress and destination ingress (overlapped,
//!   offset by the propagation latency — cut-through, not
//!   store-and-forward), plus optional per-transfer *processing
//!   overheads* charged serially at each side. Those overheads model
//!   the send/receive software path (buffer assembly, storage write-out
//!   or read-in) and are what make a data-carrying page transfer more
//!   expensive than its wire time — the calibration lever behind the
//!   paper's measured single-client bandwidths;
//! * a [`Stage::Service`] books busy time on a node's CPU (request
//!   processing);
//! * bookings happen in event-time order, so earlier-arriving work
//!   delays later work exactly like a FIFO queue.
//!
//! Workloads are [`Process`]es: state machines that, on each step,
//! submit a batch of [`Activity`] chains (fork) and are woken when the
//! whole batch has completed (join). This matches BlobSeer's
//! phase-structured operations (store pages in parallel → RPC to the
//! version manager → write metadata level by level → notify).
//!
//! Everything is deterministic: same inputs, same event order, same
//! virtual timings.

mod engine;
mod net;

pub use engine::{Engine, Process, ProcessId, Step};
pub use net::{Activity, NetStats, Network, NodeId, NodeSpec, Stage, TransferSpec};

/// Nanoseconds, the simulator's time unit.
pub type Nanos = u64;

/// Convert seconds to the simulator clock.
#[inline]
pub fn secs(s: f64) -> Nanos {
    (s * 1e9) as Nanos
}

/// Convert milliseconds to the simulator clock.
#[inline]
pub fn millis(ms: f64) -> Nanos {
    (ms * 1e6) as Nanos
}

/// Convert a simulator timestamp to seconds.
#[inline]
pub fn to_secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(secs(1.0), 1_000_000_000);
        assert_eq!(millis(0.1), 100_000);
        assert!((to_secs(1_500_000_000) - 1.5).abs() < 1e-12);
    }
}
