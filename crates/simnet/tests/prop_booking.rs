//! Property tests of the fluid network model's booking discipline.
//!
//! The throughput figures rest on these invariants: if booking ever
//! double-counted capacity or let time run backwards, the reproduced
//! curves would be artifacts.

use blobseer_simnet::{
    millis, Activity, Engine, Nanos, Network, NodeId, NodeSpec, Process, Stage, Step, TransferSpec,
};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
struct Xfer {
    src: usize,
    dst: usize,
    kbytes: u32,
}

fn xfers(nodes: usize) -> impl Strategy<Value = Vec<Xfer>> {
    proptest::collection::vec(
        (0..nodes, 0..nodes, 1u32..2000).prop_map(|(src, dst, kbytes)| Xfer { src, dst, kbytes }),
        1..40,
    )
}

struct OneShot {
    batch: Vec<Activity>,
    window: usize,
    started: bool,
}

impl Process for OneShot {
    fn step(&mut self, _now: Nanos) -> Step {
        if self.started {
            return Step::Done;
        }
        self.started = true;
        Step::AwaitWindow { activities: std::mem::take(&mut self.batch), window: self.window }
    }
}

fn run_batch(transfers: &[Xfer], nodes: usize, window: usize) -> (Nanos, Vec<u64>, Vec<u64>) {
    let mut net = Network::new(millis(0.1));
    let ids: Vec<NodeId> = (0..nodes).map(|_| net.add_node(NodeSpec::grid5000())).collect();
    let batch: Vec<Activity> = transfers
        .iter()
        .map(|t| {
            Activity::new(vec![Stage::Transfer(TransferSpec {
                src: ids[t.src],
                dst: ids[t.dst],
                bytes: u64::from(t.kbytes) * 1024,
                src_overhead: 0,
                dst_overhead: 0,
            })])
        })
        .collect();
    let mut engine = Engine::new(net);
    engine.spawn(Box::new(OneShot { batch, window, started: false }));
    let end = engine.run();
    let sent = ids.iter().map(|&n| engine.network().stats(n).bytes_sent).collect();
    let received = ids.iter().map(|&n| engine.network().stats(n).bytes_received).collect();
    (end, sent, received)
}

proptest! {
    #[test]
    fn conservation_of_bytes(transfers in xfers(5)) {
        let (_, sent, received) = run_batch(&transfers, 5, usize::MAX);
        let total: u64 = transfers.iter().map(|t| u64::from(t.kbytes) * 1024).sum();
        prop_assert_eq!(sent.iter().sum::<u64>(), total);
        prop_assert_eq!(received.iter().sum::<u64>(), total);
    }

    #[test]
    fn wall_clock_bounded_below_by_busiest_resource(transfers in xfers(5)) {
        // The end time can never beat the busiest NIC's serial work.
        let (end, _, _) = run_batch(&transfers, 5, usize::MAX);
        let cap = 117.5e6;
        let mut egress = [0f64; 5];
        let mut ingress = [0f64; 5];
        for t in &transfers {
            let bytes = f64::from(t.kbytes) * 1024.0;
            if t.src != t.dst {
                egress[t.src] += bytes / cap;
                ingress[t.dst] += bytes / cap;
            }
        }
        let busiest = egress
            .iter()
            .chain(ingress.iter())
            .fold(0f64, |a, &b| a.max(b));
        prop_assert!(
            end as f64 / 1e9 + 1e-6 >= busiest,
            "finished at {} s but busiest resource needs {} s",
            end as f64 / 1e9,
            busiest
        );
    }

    #[test]
    fn narrower_windows_never_finish_earlier(transfers in xfers(4)) {
        let (wide, _, _) = run_batch(&transfers, 4, usize::MAX);
        let (narrow, _, _) = run_batch(&transfers, 4, 2);
        let (serial, _, _) = run_batch(&transfers, 4, 1);
        prop_assert!(narrow >= wide, "window 2 beat unbounded: {narrow} < {wide}");
        prop_assert!(serial >= narrow, "window 1 beat window 2: {serial} < {narrow}");
    }

    #[test]
    fn determinism_under_any_batch(transfers in xfers(6)) {
        let a = run_batch(&transfers, 6, 4);
        let b = run_batch(&transfers, 6, 4);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    #[test]
    fn single_transfer_exact_time(kbytes in 1u32..100_000) {
        let t = Xfer { src: 0, dst: 1, kbytes };
        let (end, _, _) = run_batch(&[t], 2, 1);
        let expect = millis(0.1) as f64 + f64::from(kbytes) * 1024.0 / 117.5e6 * 1e9;
        prop_assert!(
            ((end as f64) - expect).abs() < 2.0,
            "got {end}, expected ~{expect}"
        );
    }
}
