//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` only to keep
//! its data types serde-ready; nothing serializes in-process. The no-op
//! expansion keeps those derives compiling without the real proc-macro
//! stack (syn/quote are unavailable offline).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
