//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The workspace only uses seeded, reproducible randomness
//! (`StdRng::seed_from_u64` + `gen_range`/`gen_bool`/`fill`), so this
//! shim provides exactly that over a xoshiro256** core seeded via
//! SplitMix64 — the same construction the reference xoshiro authors
//! recommend. It is *not* cryptographically secure, matching how the
//! workspace uses it (workload generation and placement jitter).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types a `Range`/`RangeInclusive` can uniformly sample.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                debug_assert!(low <= high_incl);
                let span = (high_incl as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value is uniform.
                    return rng.next_u64() as $t;
                }
                // Modulo reduction: negligible bias for test-scale spans.
                let v = ((rng.next_u64() as u128) % span) as $t;
                low.wrapping_add(v)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + WrappingDec> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end.wrapping_dec())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(rng, lo, hi)
    }
}

/// Helper: decrement for converting exclusive bounds to inclusive.
pub trait WrappingDec {
    fn wrapping_dec(self) -> Self;
}

macro_rules! impl_wrapping_dec {
    ($($t:ty),*) => {$(
        impl WrappingDec for $t {
            fn wrapping_dec(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}

impl_wrapping_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Slice-fillable destination types for [`Rng::fill`].
pub trait Fill {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.try_fill(self);
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256-bit state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = a.gen_range(10..20);
            assert_eq!(x, b.gen_range(10..20));
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..500 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_covers_buffer() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
