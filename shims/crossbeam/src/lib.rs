//! Offline shim for the `crossbeam` crate (channel module only).
//!
//! Provides MPMC `bounded`/`unbounded` channels with cloneable senders
//! *and* receivers — the part of `crossbeam::channel` the `blobseer_rt`
//! thread pool uses — implemented over a `Mutex<VecDeque>` plus two
//! condvars. Disconnection semantics follow crossbeam: `recv` fails once
//! the queue is empty and all senders are gone; `send` fails once all
//! receivers are gone.

pub mod channel;
