//! MPMC channel with crossbeam-compatible surface (subset).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `None` for unbounded channels.
    cap: Option<usize>,
    /// Signalled when an item is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when an item is popped or the last receiver leaves.
    not_full: Condvar,
}

/// Sending half of a channel; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a channel; cloneable (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

/// Create a bounded MPMC channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap.max(1)))
}

impl<T> Sender<T> {
    /// Block until the value is enqueued (or fail if all receivers left).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.chan.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake blocked receivers so they observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value is available (or fail on empty + disconnected).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive; `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        let v = st.queue.pop_front();
        drop(st);
        if v.is_some() {
            self.chan.not_full.notify_one();
        }
        v
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake blocked senders so they observe disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            }));
        }
        drop(rx);
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
