//! Offline shim for the `criterion` crate.
//!
//! A tiny timing harness with criterion's calling shape — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box` — so the workspace's micro-benches compile and run
//! without crates.io access. It reports mean wall-clock time per
//! iteration (and MB/s when a byte throughput is set); it does **not**
//! do statistical analysis, outlier rejection, or HTML reports.
//!
//! `--bench`/`--test` CLI flags passed by `cargo bench`/`cargo test`
//! are accepted and ignored; `configure_from_args` additionally honours
//! a positional substring filter like real criterion.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then measuring `iters` runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters.div_ceil(10).min(10) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            filter: None,
        }
    }
}

fn run_one(
    name: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(filter) = &settings.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Warm up for the configured window (also calibrates: how long does
    // one iteration take?), then size samples to fit the measurement
    // window.
    let warm_deadline = Instant::now() + settings.warm_up_time;
    let once = loop {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        if Instant::now() >= warm_deadline {
            break b.elapsed.max(Duration::from_nanos(1));
        }
    };

    let budget = settings.measurement_time.max(Duration::from_millis(10));
    let per_sample = (budget.as_nanos() / settings.sample_size.max(1) as u128).max(1) as u64;
    let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = Duration::MAX;
    let deadline = Instant::now() + budget;
    for _ in 0..settings.sample_size.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed / (iters.max(1) as u32);
        best = best.min(per_iter);
        total += b.elapsed;
        total_iters += iters;
        if Instant::now() >= deadline {
            break;
        }
    }

    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / (mean_ns / 1e9) / 1e6;
            format!("  {mbps:10.1} MB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (mean_ns / 1e9);
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench: {name:<50} {mean_ns:>12.1} ns/iter (best {:.1} ns){rate}", best.as_nanos());
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&name, &self.settings, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Parse CLI args: flags are ignored, a positional arg filters by
    /// substring (same convention as real criterion).
    pub fn configure_from_args(mut self) -> Self {
        for a in std::env::args().skip(1) {
            if a == "--bench" || a == "--test" || a.starts_with('-') {
                continue;
            }
            self.settings.filter = Some(a);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup { name: name.into(), criterion: self, settings, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.settings.clone();
        run_one(&id.into(), &settings, None, &mut f);
        self
    }

    pub fn final_summary(&mut self) {
        println!("bench: done");
    }
}
