//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>` plus an offset window: clones and
//! `slice` are O(1) and share the underlying allocation, which is the
//! property the provider/page-store code depends on (one stored page,
//! many cheap references).

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice (copies; this shim has no zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds (len {len})");
        Bytes { data: Arc::clone(&self.data), start: self.start + begin, end: self.start + end }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }
}
