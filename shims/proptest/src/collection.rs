//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { min: r.start, max_incl: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange { min: *r.start(), max_incl: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_incl - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = Vec::new();
        let min = self.size.min;
        // Length shrinks first, most aggressive first: the minimum
        // prefix, the half prefix, then each single-element removal —
        // a failing op schedule minimizes to the ops that matter.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = min + (value.len() - min) / 2;
            if half > min && half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Then element-wise: every candidate at every position, so
        // the greedy minimizer can binary-search individual elements.
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Generate vectors whose elements come from `element` and whose length
/// falls within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
