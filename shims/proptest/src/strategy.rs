//! Value-generation strategies, with minimal shrinking.
//!
//! Shrinking is deliberately simple (PR 9): a strategy may propose a
//! handful of smaller candidates for a failing value, and the runner
//! ([`crate::test_runner::minimize`]) greedily accepts the first
//! candidate that still fails, looping until none do. Integer
//! strategies shrink toward their lower bound (ranges) or zero
//! (`any`), vectors shrink by truncation, single-element removal and
//! element-wise shrinking, and tuples shrink component-wise.
//! [`Map`] and [`Union`] do not shrink (a mapped or branched value
//! cannot be inverted back into its source strategy) — for `Vec<Op>`
//! style interleavings the vector-level shrinks still minimize the
//! failing schedule, which is what the membership property tests need.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly-simpler candidates for a failing `value`, most
    /// aggressive first. Default: no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`]. Does not
/// shrink: the mapping is one-way.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (backs [`crate::prop_oneof!`]).
/// Does not shrink: the branch that produced a value is unknown.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { branches, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.below_u128(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.below_u128(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }

        impl ShrinkTowardZero for $t {
            fn shrink_toward_zero(self) -> Vec<Self> {
                shrink_toward(0, self)
            }
        }
    )*};
}

/// Candidates strictly between `lo` and `value`, biggest jump first:
/// the bound itself, then a geometric ladder `value - d/2, value -
/// d/4, …, value - 1`. The greedy minimizer accepting the first
/// failing candidate then converges like a binary search — O(log²)
/// evaluations to the failure boundary instead of a linear
/// predecessor walk.
fn shrink_toward<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + PartialEq
        + std::ops::Sub<Output = T>
        + std::ops::Div<Output = T>
        + From<u8>,
{
    if value <= lo {
        return Vec::new();
    }
    let (zero, two) = (T::from(0u8), T::from(2u8));
    let mut out = vec![lo];
    let mut delta = value - lo;
    loop {
        delta = delta / two;
        if delta == zero {
            break;
        }
        let candidate = value - delta;
        if *out.last().expect("out starts non-empty") != candidate {
            out.push(candidate);
        }
    }
    out
}

/// Unsigned integers that shrink toward zero (backs `any::<uN>()`).
trait ShrinkTowardZero: Sized {
    fn shrink_toward_zero(self) -> Vec<Self>;
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: each candidate shrinks one position
                // and clones the rest.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Propose simpler candidates for a failing value (see
    /// [`Strategy::shrink`]); default none.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<Self> {
                (*self).shrink_toward_zero()
            }
        }
    )*};
}

macro_rules! impl_arbitrary_iint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<Self> {
                // Same geometric ladder as `shrink_toward`, but toward
                // zero from either sign (signed `/` truncates toward
                // zero, so the ladder works unchanged for negatives).
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                let mut delta = v;
                loop {
                    delta /= 2;
                    if delta == 0 {
                        break;
                    }
                    let candidate = v - delta;
                    if *out.last().expect("out starts non-empty") != candidate {
                        out.push(candidate);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);
impl_arbitrary_iint!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}
