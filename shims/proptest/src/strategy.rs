//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (backs [`crate::prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { branches, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.below_u128(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.below_u128(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}
