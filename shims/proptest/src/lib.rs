//! Offline shim for the `proptest` crate.
//!
//! A miniature property-testing harness exposing the subset of the
//! proptest API this workspace's tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for
//!   integer ranges, tuples, and [`strategy::Just`],
//! * [`any`] for primitive types and small tuples,
//! * [`collection::vec`],
//! * [`prop_oneof!`] with optional `weight =>` prefixes,
//! * panic-based [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`].
//!
//! Failing cases are **minimized** before the test aborts: the runner
//! greedily applies the strategy's shrink candidates (integers toward
//! their lower bound, vectors by truncation and element removal,
//! tuples component-wise — see [`strategy::Strategy::shrink`] and
//! [`test_runner::minimize`]) and panics with the smallest input that
//! still fails. `Config::max_shrink_iters` bounds the candidate
//! evaluations (`0` disables shrinking). Cases are generated from a
//! fixed per-test seed so CI runs are reproducible; set
//! `PROPTEST_SEED=<u64>` to vary the seed. The default case count is
//! 64 (`Config::default()`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Choose uniformly (or by `weight =>` prefixes) among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a normal `#[test]` running `Config::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = { $crate::test_runner::Config::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = { $cfg:expr };
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                // One combined strategy over all arguments, so a
                // failing case shrinks across every input at once.
                let __strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let _ = case;
                    let __vals =
                        $crate::strategy::Strategy::sample(&__strategy, &mut rng);
                    $crate::test_runner::run_case(
                        &__strategy,
                        __vals,
                        config.max_shrink_iters,
                        &|__vals| {
                            let ($($arg,)+) = __vals;
                            $body
                        },
                    );
                }
            }
        )*
    };
}
