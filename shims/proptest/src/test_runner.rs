//! Test configuration, the deterministic RNG behind case generation,
//! and the greedy minimizer behind shrinking.

use crate::strategy::Strategy;

/// Subset of proptest's `Config` (aliased `ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Budget of candidate evaluations while minimizing a failing
    /// case; `0` disables shrinking.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64, max_shrink_iters: 512 }
    }
}

/// Greedily minimize a failing value: ask `strategy` for shrink
/// candidates, accept the first that still satisfies `fails`, and
/// restart from it; stop when no candidate fails or the `max_iters`
/// evaluation budget runs out. Returns a value that is guaranteed to
/// still fail (the input itself in the worst case).
pub fn minimize<S, F>(strategy: &S, mut current: S::Value, mut fails: F, max_iters: u32) -> S::Value
where
    S: Strategy + ?Sized,
    F: FnMut(&S::Value) -> bool,
{
    let mut evals = 0u32;
    'search: loop {
        for candidate in strategy.shrink(&current) {
            if evals >= max_iters {
                break 'search;
            }
            evals += 1;
            if fails(&candidate) {
                current = candidate;
                continue 'search;
            }
        }
        break;
    }
    current
}

/// Run one generated case; on failure, minimize it and panic with the
/// minimized input. Used by the `proptest!` macro expansion.
pub fn run_case<S, F>(strategy: &S, value: S::Value, max_shrink_iters: u32, run: &F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if catch_unwind(AssertUnwindSafe(|| run(value.clone()))).is_ok() {
        return;
    }
    // The original failure already printed via the default hook.
    // Silence the hook while probing shrink candidates (each failing
    // probe panics by design), then restore it.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let minimal = minimize(
        strategy,
        value,
        |candidate| catch_unwind(AssertUnwindSafe(|| run(candidate.clone()))).is_err(),
        max_shrink_iters,
    );
    std::panic::set_hook(prev);
    panic!("proptest case failed; minimized input: {minimal:?}");
}

/// Deterministic xoshiro256** generator seeded per test.
///
/// The seed mixes the test's name with an optional `PROPTEST_SEED`
/// environment override, so every test explores a different sequence
/// but reruns are reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name (+ `PROPTEST_SEED` env override if set).
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok())
        {
            seed ^= extra.rotate_left(17);
        }
        Self::from_seed(seed)
    }

    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion into xoshiro256** state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `0..bound` for spans up to `2^64` inclusive.
    pub fn below_u128(&mut self, bound: u128) -> u64 {
        debug_assert!(bound > 0 && bound <= 1 << 64);
        if bound == 1 << 64 {
            self.next_u64()
        } else {
            self.next_u64() % (bound as u64)
        }
    }
}
