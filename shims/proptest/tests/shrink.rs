//! Shrinking shim tests: known-failing predicates must minimize to the
//! smallest input that still fails, via the same greedy `minimize` the
//! `proptest!` macro uses on a failing case.

use proptest::collection::vec;
use proptest::strategy::any;
use proptest::test_runner::minimize;

#[test]
fn range_shrinks_to_the_boundary() {
    // "fails when >= 500" over 0..1000 must land exactly on 500.
    let strategy = 0u64..1000;
    let minimal = minimize(&strategy, 837, |v| *v >= 500, 4096);
    assert_eq!(minimal, 500);
}

#[test]
fn inclusive_range_shrinks_toward_its_lower_bound() {
    // The predicate always fails, so the minimum of the range wins.
    let strategy = 10u32..=99;
    let minimal = minimize(&strategy, 73, |_| true, 4096);
    assert_eq!(minimal, 10);
}

#[test]
fn any_shrinks_toward_zero() {
    let strategy = any::<u64>();
    let minimal = minimize(&strategy, u64::MAX, |v| *v >= 12_345, 4096);
    assert_eq!(minimal, 12_345);
}

#[test]
fn signed_any_shrinks_negative_values_toward_zero() {
    let strategy = any::<i32>();
    let minimal = minimize(&strategy, -4_000, |v| *v <= -17, 4096);
    assert_eq!(minimal, -17);
}

#[test]
fn vec_shrinks_away_irrelevant_elements() {
    // "contains a 9": everything but the 9 is noise and must go.
    let strategy = vec(0u64..100, 0..8usize);
    let failing = vec![3, 9, 0, 7, 2];
    let minimal = minimize(&strategy, failing, |v| v.contains(&9), 4096);
    assert_eq!(minimal, vec![9]);
}

#[test]
fn vec_shrinks_length_and_elements() {
    // "some element >= 5": minimal is a single element of exactly 5 —
    // length shrinks drop the noise, element shrinks find the boundary.
    let strategy = vec(0u64..100, 0..8usize);
    let failing = vec![3, 9, 0, 7, 2];
    let minimal = minimize(&strategy, failing, |v| v.iter().any(|x| *x >= 5), 4096);
    assert_eq!(minimal, vec![5]);
}

#[test]
fn vec_shrink_respects_the_minimum_length() {
    let strategy = vec(0u8..10, 3..6usize);
    let minimal = minimize(&strategy, vec![5, 5, 5, 5, 5], |_| true, 4096);
    assert_eq!(minimal, vec![0, 0, 0]);
}

#[test]
fn tuples_shrink_component_wise() {
    let strategy = (0u64..100, 0u64..100);
    let minimal = minimize(&strategy, (60, 42), |(a, b)| a + b >= 30, 4096);
    // Greedy order still reaches a local minimum: any further shrink of
    // either component drops the sum below 30.
    let (a, b) = minimal;
    assert_eq!(a + b, 30);
}

#[test]
fn minimize_returns_the_input_when_nothing_smaller_fails() {
    let strategy = 0u64..1000;
    let minimal = minimize(&strategy, 7, |v| *v == 7, 4096);
    assert_eq!(minimal, 7);
}

#[test]
fn zero_budget_disables_shrinking() {
    let strategy = 0u64..1000;
    let minimal = minimize(&strategy, 837, |v| *v >= 500, 0);
    assert_eq!(minimal, 837);
}

#[test]
fn failing_proptest_case_reports_the_minimized_input() {
    // End-to-end through the macro path: a failing body must abort with
    // the minimized input in the panic payload.
    use proptest::test_runner::run_case;
    let strategy = 0u64..1000;
    let err = std::panic::catch_unwind(|| {
        run_case(&strategy, 837, 4096, &|v| assert!(v < 500));
    })
    .expect_err("the case must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap_or_default());
    assert!(msg.contains("minimized input: 500"), "unexpected panic message: {msg}");
}
