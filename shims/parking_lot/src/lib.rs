//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `parking_lot` on top of
//! `std::sync`. Semantics match what the BlobSeer crates rely on:
//! non-poisoning locks (a panicked holder does not poison — we unwrap
//! into the inner data via `PoisonError::into_inner`), guards that
//! `Deref` to the data, and a `Condvar` that waits on `&mut MutexGuard`.
//!
//! Swap this for the real crate by pointing `[workspace.dependencies]`
//! back at the registry once the build environment has network access.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this module's [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wait until `deadline`, reporting whether the deadline elapsed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    // Unlike real parking_lot these return `()` rather than wake counts:
    // std::sync::Condvar cannot report them, and returning `()` makes any
    // future dependence on counts a compile error instead of silent lies.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakeup_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();

        // Timed wait on a never-signalled condvar must time out.
        let (m, cv) = (Mutex::new(()), Condvar::new());
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
