//! Offline shim for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits and re-exports
//! no-op derive macros so `#[derive(Serialize, Deserialize)]` compiles
//! without crates.io access. No actual serialization is provided; the
//! workspace only derives these to keep its data model serde-ready.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
